//! Integration tests of the `--rng per-node` sparse-frontier runtime.
//!
//! Per-node mode legitimately diverges from the shared-stream oracle draw
//! by draw (simultaneous phased rounds replace sequential stepping), so it
//! is pinned three other ways:
//!
//! * **structurally** — under a scripted churn history it must track the
//!   shared-stream runtime's live-node set exactly and converge to the
//!   same per-node view sizes (the differential proptest below),
//! * **statistically** — in-degree dispersion and ring convergence speed
//!   must match the shared-stream runtime within tolerance,
//! * **exactly against itself** — seeded golden digests pin the new mode's
//!   reports bit for bit, at every thread count, and the bucket-ring
//!   frontier scheduler must agree with its brute-force full-sweep twin.

use proptest::prelude::*;

use hybridcast_graph::NodeId;
use hybridcast_sim::{DenseSimNetwork, GossipRuntime, Network, RngMode, SimConfig};

fn config(nodes: usize) -> SimConfig {
    SimConfig {
        nodes,
        warmup_cycles: 0,
        ..SimConfig::default()
    }
}

/// FNV-1a over the full flat link export: any drift in ids, link order or
/// link content changes the digest.
fn links_digest(net: &DenseSimNetwork) -> u64 {
    let flat = net.flat_links();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &id in &flat.ids {
        mix(id.as_u64());
    }
    for &o in &flat.r_offsets {
        mix(u64::from(o));
    }
    for &t in &flat.r_targets {
        mix(t.as_u64());
    }
    for &o in &flat.d_offsets {
        mix(u64::from(o));
    }
    for &t in &flat.d_targets {
        mix(t.as_u64());
    }
    h
}

/// A deterministic churn script shared by both runtimes: kill the `kills`
/// lowest-id live nodes, then spawn `spawns` nodes through the *median*
/// surviving id. Selection is by id, never by RNG, so both modes see the
/// same history by construction. The median matters twice over: kills take
/// the lowest ids, so the introducer is never killed out from under a
/// fresh spawn (a spawn whose sole contact dies before its first shuffle
/// is isolated forever — a stochastic fate the two modes would not share),
/// and the median is a well-integrated veteran, so a newcomer's first
/// shuffle plants its descriptor in the connected core (bootstrapping
/// spawns through the newest node chains fresh spawns into a 2-clique
/// that simultaneous-round gossip can leave permanently severed, another
/// symmetry the sequential oracle happens to break).
fn scripted_churn_step<R: GossipRuntime>(net: &mut R, kills: usize, spawns: usize) {
    let live = net.live_ids();
    for &victim in live.iter().take(kills.min(live.len().saturating_sub(1))) {
        assert!(net.kill_node(victim));
    }
    let live = net.live_ids();
    let introducer = live.get(live.len() / 2).copied();
    for _ in 0..spawns {
        net.spawn_node(introducer);
    }
}

// ---- golden fixtures -----------------------------------------------------

/// Seeded golden digests of the per-node runtime: 40 warm cycles, a
/// scripted churn burst, 20 recovery cycles. Any change to the stream
/// derivation, the frontier schedule or the phased kernel shifts these
/// values — bump them **only** with a matching note in docs/DETERMINISM.md.
#[test]
fn per_node_golden_digests_are_stable() {
    let mut expected = Vec::new();
    for (seed, period, pinned) in [
        (42u64, 1u64, (0x74a4_c2c1_0cd7_6b34_u64, 120usize)),
        (42u64, 4u64, (0xbcce_0eb3_0deb_112a_u64, 120usize)),
        (7u64, 2u64, (0x066c_68fe_991a_9a69_u64, 120usize)),
    ] {
        let mut net = DenseSimNetwork::new_per_node(config(120), seed, period, 4);
        net.run_cycles(40);
        scripted_churn_step(&mut net, 12, 12);
        net.run_cycles(20);
        expected.push(((seed, period), (links_digest(&net), net.len()), pinned));
    }
    for ((seed, period), actual, pinned) in expected {
        assert_eq!(
            actual, pinned,
            "per-node golden digest drifted for seed {seed}, period {period} \
             (actual {:#018x}, pinned {:#018x})",
            actual.0, pinned.0,
        );
    }
}

// ---- thread invariance ---------------------------------------------------

/// The full overlay snapshot — not just a digest — is bit-identical at
/// every thread count, across warm-up, scripted churn and recovery.
#[test]
fn snapshots_are_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        let mut net = DenseSimNetwork::new_per_node(config(90), 17, 3, threads);
        net.run_cycles(25);
        scripted_churn_step(&mut net, 9, 9);
        net.run_cycles(25);
        (net.overlay_snapshot(), links_digest(&net))
    };
    let reference = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(reference, run(threads), "{threads} threads diverged");
    }
}

// ---- frontier self-check -------------------------------------------------

/// The bucket-ring frontier scheduler and its brute-force full-sweep twin
/// must step exactly the same nodes every cycle, including across churn
/// (slot reuse re-arms timers through fresh stream generations).
#[test]
fn frontier_and_full_sweep_agree_under_churn() {
    let mut bucketed = DenseSimNetwork::new_per_node(config(80), 23, 4, 2);
    let mut swept = DenseSimNetwork::new_per_node(config(80), 23, 4, 2);
    swept.set_frontier_full_sweep(true);
    for step in 0..6 {
        bucketed.run_cycles(5);
        swept.run_cycles(5);
        scripted_churn_step(&mut bucketed, 6, 6);
        scripted_churn_step(&mut swept, 6, 6);
        for _ in 0..4 {
            bucketed.run_cycles(1);
            swept.run_cycles(1);
            assert_eq!(
                bucketed.last_frontier_len(),
                swept.last_frontier_len(),
                "frontier size diverged at churn step {step}"
            );
        }
        assert_eq!(
            bucketed.overlay_snapshot(),
            swept.overlay_snapshot(),
            "overlay diverged at churn step {step}"
        );
    }
}

// ---- statistical equivalence ---------------------------------------------

/// In-degree dispersion of the Cyclon overlay: per-node mode must produce
/// the same balanced in-degree distribution the shared-stream runtime
/// converges to (equal means by construction; standard deviation and
/// maximum within tolerance).
#[test]
fn in_degree_distribution_matches_shared_mode() {
    fn in_degree_stats(snapshot: &hybridcast_sim::OverlaySnapshot) -> (f64, f64, usize) {
        let mut counts: std::collections::BTreeMap<NodeId, usize> =
            snapshot.live_nodes().map(|id| (id, 0)).collect();
        for id in snapshot.live_nodes() {
            for target in snapshot.r_links(id) {
                if let Some(c) = counts.get_mut(&target) {
                    *c += 1;
                }
            }
        }
        let n = counts.len() as f64;
        let mean = counts.values().sum::<usize>() as f64 / n;
        let var = counts
            .values()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        let max = counts.values().copied().max().unwrap_or(0);
        (mean, var.sqrt(), max)
    }

    let mut shared = DenseSimNetwork::new(config(400), 31);
    shared.run_cycles(60);
    let mut per_node = DenseSimNetwork::new_per_node(config(400), 31, 1, 4);
    per_node.run_cycles(60);

    let (mean_sh, std_sh, max_sh) = in_degree_stats(&shared.overlay_snapshot());
    let (mean_pn, std_pn, max_pn) = in_degree_stats(&per_node.overlay_snapshot());

    // Full views on both sides: mean in-degree == mean out-degree == view
    // capacity, exactly.
    assert_eq!(mean_sh, mean_pn, "mean in-degree must match exactly");
    // Dispersion within 2x of each other (Cyclon keeps in-degree tightly
    // concentrated; a broken merge rule would blow this up by an order of
    // magnitude).
    assert!(
        std_pn <= 2.0 * std_sh + 1.0 && std_sh <= 2.0 * std_pn + 1.0,
        "in-degree spread diverged: shared std {std_sh:.2}, per-node std {std_pn:.2}"
    );
    assert!(
        f64::from(u32::try_from(max_pn).unwrap())
            <= 2.0 * f64::from(u32::try_from(max_sh).unwrap())
            && max_pn as f64 >= 0.5 * max_sh as f64,
        "max in-degree diverged: shared {max_sh}, per-node {max_pn}"
    );
}

/// Ring convergence speed: the number of cycles Vicinity needs to place
/// ≥95% of nodes next to both true ring neighbours must be in the same
/// ballpark in both modes.
#[test]
fn ring_convergence_speed_matches_shared_mode() {
    fn converged_fraction(net: &DenseSimNetwork) -> f64 {
        let snapshot = net.overlay_snapshot();
        let mut by_position: Vec<(u64, NodeId)> = snapshot
            .nodes()
            .map(|(id, node)| (node.ring_position, id))
            .collect();
        by_position.sort_unstable();
        let n = by_position.len();
        let mut correct = 0usize;
        for (i, &(_, id)) in by_position.iter().enumerate() {
            let succ = by_position[(i + 1) % n].1;
            let pred = by_position[(i + n - 1) % n].1;
            let d = snapshot.d_links(id);
            if d.contains(&succ) && d.contains(&pred) {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    }
    fn cycles_to_converge(mut net: DenseSimNetwork) -> usize {
        for cycle in 1..=200 {
            net.run_cycles(1);
            if converged_fraction(&net) >= 0.95 {
                return cycle;
            }
        }
        panic!("the ring never converged within 200 cycles");
    }

    let shared = cycles_to_converge(DenseSimNetwork::new(config(120), 19));
    let per_node = cycles_to_converge(DenseSimNetwork::new_per_node(config(120), 19, 1, 2));
    assert!(
        per_node <= 3 * shared + 10 && shared <= 3 * per_node + 10,
        "ring convergence speed diverged: shared {shared} cycles, per-node {per_node} cycles"
    );
}

// ---- structural differential ---------------------------------------------

proptest! {
    /// Under any scripted churn history, the per-node frontier runtime
    /// tracks the shared-stream runtime's live-node set exactly (same ids,
    /// same join cycles) and — after a churn-free convergence tail — the
    /// same per-node Cyclon view sizes. The RNG modes draw differently;
    /// the *structure* they maintain must not.
    ///
    /// The view cap stays below the population (Cyclon view sizes only
    /// stabilize at the cap in that regime — with the cap at or above the
    /// population, sizes fluctuate a few entries below full forever, in
    /// *both* modes) and the churn script replaces exactly as many nodes
    /// as it kills, so the population never shrinks into the other regime.
    #[test]
    fn per_node_runtime_tracks_shared_structure_under_scripted_churn(
        nodes in 16usize..40,
        cyclon_view in 5usize..9,
        // Shuffle length >= 2: at length 1 a request carries only the
        // initiator's own descriptor, healing crawls, and the tail below
        // would need hundreds of cycles in either mode.
        cyclon_shuffle in 2usize..5,
        period in 1u64..4,
        threads in 1usize..5,
        warm in 3usize..12,
        steps in 0usize..5,
        churned in 0usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig {
            nodes,
            cyclon_view,
            cyclon_shuffle,
            warmup_cycles: 0,
            ..SimConfig::default()
        };
        let mut shared = DenseSimNetwork::new(cfg.clone(), seed);
        let mut per_node = DenseSimNetwork::new_per_node(cfg, seed, period, threads);

        shared.run_cycles(warm);
        per_node.run_cycles(warm);
        prop_assert_eq!(shared.live_ids(), per_node.live_ids());

        for _ in 0..steps {
            scripted_churn_step(&mut shared, churned, churned);
            scripted_churn_step(&mut per_node, churned, churned);
            shared.run_cycles(1);
            per_node.run_cycles(1);
            prop_assert_eq!(shared.live_ids(), per_node.live_ids());
            for id in shared.live_ids() {
                prop_assert_eq!(shared.joined_at(id), per_node.joined_at(id));
            }
        }

        // Churn-free tail: both modes heal to (essentially) full views.
        // Exact per-node size equality at one instant is stochastic in
        // *both* modes — a node whose last reply was all duplicates sits
        // one entry below the cap for a cycle — so the invariant is each
        // node within a whisker of the cap, and the two modes' mean view
        // sizes in lock-step.
        let tail = 40 + usize::try_from(period).unwrap() * 10;
        shared.run_cycles(tail);
        per_node.run_cycles(tail);
        let shared_snap = shared.overlay_snapshot();
        let per_node_snap = per_node.overlay_snapshot();
        let mut sum_shared = 0usize;
        let mut sum_per_node = 0usize;
        for id in shared.live_ids() {
            let len_shared = shared_snap.r_links(id).len();
            let len_per_node = per_node_snap.r_links(id).len();
            prop_assert!(
                len_shared + 2 >= cyclon_view && len_per_node + 2 >= cyclon_view,
                "{} did not heal: shared {}, per-node {} (cap {})",
                id, len_shared, len_per_node, cyclon_view
            );
            sum_shared += len_shared;
            sum_per_node += len_per_node;
        }
        let n = shared.len() as f64;
        let mean_diff = (sum_shared as f64 - sum_per_node as f64).abs() / n;
        prop_assert!(
            mean_diff <= 0.5,
            "mean view size diverged by {mean_diff:.2} (shared {sum_shared}, per-node {sum_per_node})"
        );
    }
}

// ---- mode plumbing -------------------------------------------------------

/// The runtime reports its mode through the `GossipRuntime` trait, and the
/// BTree oracle has no per-node mode at all.
#[test]
fn runtimes_report_their_rng_mode() {
    let shared: &dyn GossipRuntime = &DenseSimNetwork::new(config(10), 1);
    assert_eq!(shared.rng_mode(), RngMode::Shared);
    let per_node: &dyn GossipRuntime = &DenseSimNetwork::new_per_node(config(10), 1, 2, 2);
    assert_eq!(per_node.rng_mode(), RngMode::PerNode);
    let btree: &dyn GossipRuntime = &Network::new(config(10), 1);
    assert_eq!(btree.rng_mode(), RngMode::Shared);
}
