//! Differential property tests: the arena-based epoch runtime
//! ([`DenseSimNetwork`]) must be **bit-identical** to the id-keyed runtime
//! ([`Network`]) for every configuration, seed and churn history — the
//! BTree runtime is the oracle the dense one is pinned against.

use proptest::prelude::*;

use hybridcast_sim::churn::{ChurnConfig, ChurnDriver};
use hybridcast_sim::dense::DenseSimNetwork;
use hybridcast_sim::sessions::{SessionChurnConfig, SessionChurnDriver, SessionLength};
use hybridcast_sim::{Network, SimConfig};

/// Builds a validated configuration from raw proptest draws.
fn config(
    nodes: usize,
    cyclon_view: usize,
    cyclon_shuffle: usize,
    vicinity_view: usize,
    vicinity_gossip: usize,
    rings: usize,
    run_vicinity: bool,
) -> SimConfig {
    SimConfig {
        nodes,
        cyclon_view,
        cyclon_shuffle,
        vicinity_view,
        vicinity_gossip,
        warmup_cycles: 0,
        rings,
        run_vicinity,
    }
}

proptest! {
    /// Across randomized configurations and seeds, warm-up gossip followed
    /// by artificial churn produces equal overlay snapshots (node sets,
    /// ring positions, join cycles, r-links and d-links in order), and the
    /// two simulation RNG streams stay aligned to the very end.
    #[test]
    fn dense_runtime_equals_btree_runtime_under_churn(
        nodes in 2usize..40,
        cyclon_view in 2usize..10,
        cyclon_shuffle in 1usize..6,
        vicinity_view in 2usize..8,
        vicinity_gossip in 1usize..5,
        rings in 1usize..3,
        run_vicinity in any::<bool>(),
        warm_cycles in 0usize..20,
        churn_rate in 0.0f64..0.2,
        churn_cycles in 0usize..10,
        seed in any::<u64>(),
    ) {
        let cfg = config(
            nodes, cyclon_view, cyclon_shuffle, vicinity_view, vicinity_gossip,
            rings, run_vicinity,
        );
        let mut dense = DenseSimNetwork::new(cfg.clone(), seed);
        let mut btree = Network::new(cfg, seed);

        dense.run_cycles(warm_cycles);
        btree.run_cycles(warm_cycles);
        prop_assert_eq!(dense.overlay_snapshot(), btree.overlay_snapshot());

        let mut dense_driver = ChurnDriver::new(ChurnConfig { rate: churn_rate });
        let mut btree_driver = ChurnDriver::new(ChurnConfig { rate: churn_rate });
        dense_driver.run_cycles(&mut dense, churn_cycles);
        btree_driver.run_cycles(&mut btree, churn_cycles);

        prop_assert_eq!(dense_driver.removed(), btree_driver.removed());
        prop_assert_eq!(dense.len(), btree.len());
        prop_assert_eq!(dense.cycle(), btree.cycle());
        prop_assert_eq!(dense.overlay_snapshot(), btree.overlay_snapshot());
        // One more shared draw: the RNG streams are still in lock-step.
        prop_assert_eq!(dense.random_live_node(), btree.random_live_node());
    }

    /// The same contract under the session-based (trace-like) churn model:
    /// explicit per-node session lengths, fractional arrival rates.
    #[test]
    fn dense_runtime_equals_btree_runtime_under_session_churn(
        nodes in 2usize..30,
        warm_cycles in 0usize..10,
        arrivals in 0.0f64..3.0,
        mean_session in 2.0f64..40.0,
        session_cycles in 1usize..12,
        seed in any::<u64>(),
        driver_seed in any::<u64>(),
    ) {
        let cfg = SimConfig {
            nodes,
            warmup_cycles: 0,
            ..SimConfig::default()
        };
        let mut dense = DenseSimNetwork::new(cfg.clone(), seed);
        let mut btree = Network::new(cfg, seed);
        dense.run_cycles(warm_cycles);
        btree.run_cycles(warm_cycles);

        let session = SessionChurnConfig {
            arrivals_per_cycle: arrivals,
            session_length: SessionLength::Exponential { mean: mean_session },
        };
        let mut dense_driver = SessionChurnDriver::new(session, &dense, driver_seed);
        let mut btree_driver = SessionChurnDriver::new(session, &btree, driver_seed);
        dense_driver.run_cycles(&mut dense, session_cycles);
        btree_driver.run_cycles(&mut btree, session_cycles);

        prop_assert_eq!(dense_driver.departed(), btree_driver.departed());
        prop_assert_eq!(dense_driver.arrived(), btree_driver.arrived());
        prop_assert_eq!(dense.overlay_snapshot(), btree.overlay_snapshot());
    }

    /// The flat CSR export always agrees with the id-keyed snapshot export
    /// of the same network (same node order, same link lists).
    #[test]
    fn flat_links_always_match_the_snapshot(
        nodes in 2usize..40,
        rings in 1usize..3,
        cycles in 0usize..25,
        churn_rate in 0.0f64..0.1,
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig {
            nodes,
            rings,
            warmup_cycles: 0,
            ..SimConfig::default()
        };
        let mut dense = DenseSimNetwork::new(cfg, seed);
        let mut driver = ChurnDriver::new(ChurnConfig { rate: churn_rate });
        driver.run_cycles(&mut dense, cycles);

        let snapshot = dense.overlay_snapshot();
        let flat = dense.flat_links();
        prop_assert_eq!(flat.ids.len(), snapshot.len());
        prop_assert_eq!(flat.r_offsets.len(), flat.ids.len() + 1);
        prop_assert_eq!(flat.d_offsets.len(), flat.ids.len() + 1);
        for (i, &id) in flat.ids.iter().enumerate() {
            let r = &flat.r_targets[flat.r_offsets[i] as usize..flat.r_offsets[i + 1] as usize];
            let d = &flat.d_targets[flat.d_offsets[i] as usize..flat.d_offsets[i + 1] as usize];
            let expected_r = snapshot.r_links(id);
            let expected_d = snapshot.d_links(id);
            prop_assert_eq!(r, expected_r.as_slice());
            prop_assert_eq!(d, expected_d.as_slice());
        }
    }

    /// The probed runtimes emit **identical** trace streams: one
    /// `ViewExchange` per gossiping node in shuffle order, one `CycleEnd`
    /// per cycle, and matching `Leave`/`Join` pairs for every churn step —
    /// the membership-layer counterpart of the engine stream differentials
    /// in `crates/core/tests/trace.rs`. The snapshots must stay equal too:
    /// probes observe, they never steer.
    #[test]
    fn probed_runtimes_emit_identical_event_streams(
        nodes in 2usize..30,
        rings in 1usize..3,
        warm_cycles in 1usize..15,
        churn_steps in 0usize..8,
        churn_rate in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig {
            nodes,
            rings,
            warmup_cycles: 0,
            ..SimConfig::default()
        };
        let mut dense = DenseSimNetwork::new(cfg.clone(), seed);
        let mut btree = Network::new(cfg, seed);
        let mut dense_probe = hybridcast_obs::VecProbe::new();
        let mut btree_probe = hybridcast_obs::VecProbe::new();

        dense.run_cycles_probed(warm_cycles, &mut dense_probe);
        btree.run_cycles_probed(warm_cycles, &mut btree_probe);

        let mut dense_driver = ChurnDriver::new(ChurnConfig { rate: churn_rate });
        let mut btree_driver = ChurnDriver::new(ChurnConfig { rate: churn_rate });
        for _ in 0..churn_steps {
            dense_driver.apply_churn_step_probed(&mut dense, &mut dense_probe);
            dense.run_cycles_probed(1, &mut dense_probe);
            btree_driver.apply_churn_step_probed(&mut btree, &mut btree_probe);
            btree.run_cycles_probed(1, &mut btree_probe);
        }

        prop_assert_eq!(dense_probe.events, btree_probe.events);
        prop_assert_eq!(dense.overlay_snapshot(), btree.overlay_snapshot());
    }
}
