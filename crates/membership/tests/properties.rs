//! Property-based tests for the membership protocols.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use hybridcast_graph::NodeId;
use hybridcast_membership::cyclon::CyclonNode;
use hybridcast_membership::descriptor::Descriptor;
use hybridcast_membership::proximity::{circular_distance, ring_neighbors};
use hybridcast_membership::vicinity::VicinityNode;

fn n(i: u64) -> NodeId {
    NodeId::new(i)
}

/// Checks the invariants every Cyclon view must keep at all times.
fn assert_cyclon_invariants(node: &CyclonNode<()>) -> Result<(), TestCaseError> {
    let ids = node.view().node_ids();
    let mut dedup = ids.clone();
    dedup.sort();
    dedup.dedup();
    prop_assert_eq!(ids.len(), dedup.len(), "duplicate entries in view");
    prop_assert!(!node.view().contains(node.id()), "view contains the owner");
    prop_assert!(node.view().len() <= node.view().capacity(), "view overflow");
    Ok(())
}

proptest! {
    /// Arbitrary sequences of Cyclon shuffles between a small population
    /// never violate the view invariants (no self, no duplicates, bounded).
    #[test]
    fn cyclon_shuffles_preserve_invariants(
        population in 2usize..12,
        view_len in 1usize..8,
        shuffle_len in 1usize..8,
        steps in 1usize..60,
        seed in 0u64..500,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut nodes: Vec<CyclonNode<()>> = (0..population as u64)
            .map(|i| CyclonNode::new(n(i), (), view_len, shuffle_len))
            .collect();
        // Star bootstrap: everybody knows node 0.
        for node in nodes.iter_mut().skip(1) {
            node.add_bootstrap_contact(Descriptor::new(n(0), ()));
        }

        for step in 0..steps {
            let initiator = step % population;
            nodes[initiator].begin_cycle();
            let exchange = nodes[initiator].initiate_shuffle(&mut rng);
            if let Some((target, request)) = exchange {
                let pending = CyclonNode::pending(target, request.clone());
                let target_idx = target.as_index();
                prop_assume!(target_idx < population);
                let from = nodes[initiator].id();
                let reply = nodes[target_idx].handle_shuffle_request(from, &request, &mut rng);
                nodes[initiator].handle_shuffle_response(&pending, &reply);
            }
            for node in &nodes {
                assert_cyclon_invariants(node)?;
            }
        }
    }

    /// The circular distance on ring positions is a metric-like quantity:
    /// symmetric, zero only on equality, and never more than half the ring.
    #[test]
    fn circular_distance_properties(a in any::<u64>(), b in any::<u64>()) {
        let d = circular_distance(a, b);
        prop_assert_eq!(d, circular_distance(b, a));
        prop_assert_eq!(d == 0, a == b);
        // The shorter arc is at most half of the 2^64 ring.
        prop_assert!(u128::from(d) <= (1u128 << 63));
    }

    /// `ring_neighbors` picks the true successor and predecessor in the
    /// circular order of keys.
    #[test]
    fn ring_neighbors_are_correct(
        own in 0u64..1000,
        keys in prop::collection::btree_set(0u64..1000, 1..30),
    ) {
        let candidates: Vec<(u64, NodeId)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, n(i as u64 + 1)))
            .collect();
        let (pred, succ) = ring_neighbors(&own, &candidates);

        // Reference computation: sort keys; successor = first key > own
        // (wrapping), predecessor = last key <= own (wrapping).
        let sorted: Vec<(u64, NodeId)> = candidates.clone();
        let expected_succ = sorted
            .iter()
            .find(|(k, _)| *k > own)
            .or_else(|| sorted.first())
            .map(|&(_, id)| id);
        let expected_pred = sorted
            .iter()
            .rev()
            .find(|(k, _)| *k <= own)
            .or_else(|| sorted.last())
            .map(|&(_, id)| id);
        prop_assert_eq!(succ, expected_succ);
        prop_assert_eq!(pred, expected_pred);
    }

    /// After absorbing an arbitrary candidate set, a Vicinity node's view
    /// contains the true ring successor and predecessor among those
    /// candidates (as long as the view has room for at least two entries).
    #[test]
    fn vicinity_converges_to_true_ring_neighbors(
        own_key in 0u64..10_000,
        candidate_keys in prop::collection::btree_set(0u64..10_000, 2..40),
        view_len in 2usize..24,
    ) {
        prop_assume!(!candidate_keys.contains(&own_key));
        let descriptors: Vec<Descriptor<u64>> = candidate_keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Descriptor::new(n(i as u64 + 1), k))
            .collect();
        let mut node = VicinityNode::new(n(0), own_key, view_len, 3);
        node.absorb_candidates(&descriptors);

        let pairs: Vec<(u64, NodeId)> = descriptors.iter().map(|d| (d.profile, d.id)).collect();
        let (expected_pred, expected_succ) = ring_neighbors(&own_key, &pairs);
        let (pred, succ) = node.ring_neighbors();
        prop_assert_eq!(pred, expected_pred, "predecessor kept in the view");
        prop_assert_eq!(succ, expected_succ, "successor kept in the view");
    }

    /// Vicinity views never exceed capacity, never contain the owner and
    /// never contain duplicates, no matter how candidates arrive.
    #[test]
    fn vicinity_view_invariants(
        own_key in 0u64..1000,
        batches in prop::collection::vec(
            prop::collection::vec((1u64..60, 0u64..1000), 0..20),
            1..6
        ),
        view_len in 1usize..10,
    ) {
        let mut node = VicinityNode::new(n(0), own_key, view_len, 2);
        for batch in batches {
            let descriptors: Vec<Descriptor<u64>> = batch
                .into_iter()
                .map(|(id, key)| Descriptor::new(n(id), key))
                .collect();
            node.absorb_candidates(&descriptors);
            let ids = node.view().node_ids();
            let mut dedup = ids.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(ids.len(), dedup.len());
            prop_assert!(!node.view().contains(n(0)));
            prop_assert!(node.view().len() <= view_len);
        }
    }
}
