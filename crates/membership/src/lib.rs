//! Epidemic membership management for the hybridcast workspace.
//!
//! Hybrid dissemination protocols (Section 5 of the Middleware 2007 paper)
//! need two kinds of links between nodes:
//!
//! * **r-links** — uniformly random links, supplied by a *peer sampling
//!   service*. This crate implements **Cyclon** ([`cyclon::CyclonNode`]), the
//!   peer-sampling instance used by the paper: nodes periodically *shuffle*
//!   part of their view with a neighbour, keeping the overlay close to a
//!   random graph.
//! * **d-links** — deterministic links forming a strongly connected
//!   structure; RingCast uses a global bidirectional ring. The ring is built
//!   and maintained by **Vicinity** ([`vicinity::VicinityNode`]), a
//!   proximity-driven topology-construction protocol: nodes keep the peers
//!   *closest* to them in an (arbitrary) circular identifier space, and the
//!   two closest — one on each side — become the ring neighbours.
//!
//! Both protocols are *cycle-driven*: once every cycle a node initiates an
//! exchange with one selected peer. The types here expose the three halves
//! of an exchange (`initiate…`, `handle…request`, `handle…response`) so that
//! the same implementation can be driven by the deterministic simulator
//! (`hybridcast-sim`) or by a real transport (`hybridcast-net`).
//!
//! # Quick example
//!
//! ```
//! use hybridcast_membership::cyclon::CyclonNode;
//! use hybridcast_membership::descriptor::Descriptor;
//! use hybridcast_graph::NodeId;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! // Node 1 boots knowing only node 0 (star-topology bootstrap).
//! let mut node = CyclonNode::new(NodeId::new(1), (), 20, 5);
//! node.add_bootstrap_contact(Descriptor::new(NodeId::new(0), ()));
//!
//! node.begin_cycle();
//! let (target, payload) = node.initiate_shuffle(&mut rng).expect("has a contact");
//! assert_eq!(target, NodeId::new(0));
//! assert!(payload.iter().any(|d| d.id == NodeId::new(1)), "always advertises itself");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cyclon;
pub mod descriptor;
pub mod framework;
pub mod proximity;
pub mod sampling;
pub mod vicinity;
pub mod view;

pub use cyclon::CyclonNode;
pub use descriptor::Descriptor;
pub use sampling::PeerSampling;
pub use vicinity::VicinityNode;
pub use view::{oldest_descriptor_index, View};
