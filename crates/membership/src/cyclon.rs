//! The Cyclon peer sampling protocol (Voulgaris, Gavidia & van Steen, 2005).
//!
//! Cyclon maintains, at every node, a small partial view of `cyc` random
//! other nodes, refreshed by periodic *shuffles*: once per cycle a node
//!
//! 1. increments the age of every view entry,
//! 2. picks its **oldest** neighbour `Q` and removes it from the view,
//! 3. sends `Q` a subset of `shuffle_len` descriptors — `shuffle_len - 1`
//!    random view entries plus a fresh descriptor of itself,
//! 4. `Q` answers with up to `shuffle_len` random entries of its own view and
//!    stores the received ones (filling empty slots first, then replacing the
//!    entries it sent away),
//! 5. the initiator merges the reply the same way.
//!
//! The resulting overlay strongly resembles a random graph: in-degrees
//! concentrate around `cyc` and links are refreshed continuously, which is
//! what the RandCast/RingCast evaluation relies on. Gossiping with the
//! *oldest* neighbour bounds link staleness and flushes dead nodes out of
//! the overlay within at most `cyc` cycles — the property behind the
//! self-healing behaviour discussed in the catastrophic-failure experiments.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hybridcast_graph::NodeId;

use crate::descriptor::Descriptor;
use crate::sampling::PeerSampling;
use crate::view::View;

/// Default Cyclon view length used throughout the paper's evaluation.
pub const DEFAULT_VIEW_LENGTH: usize = 20;

/// Default shuffle length (descriptors exchanged per shuffle).
pub const DEFAULT_SHUFFLE_LENGTH: usize = 5;

/// State of one node running the Cyclon protocol.
///
/// The profile type `P` is carried opaquely inside descriptors so that
/// higher layers (Vicinity) can learn profiles of random peers from Cyclon's
/// view; plain peer sampling uses `P = ()`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CyclonNode<P> {
    id: NodeId,
    profile: P,
    view: View<P>,
    shuffle_len: usize,
}

/// The state an initiator keeps between sending a shuffle request and
/// receiving the reply: which target it contacted and which descriptors it
/// sent (the reply may overwrite exactly those).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingShuffle<P> {
    /// The peer the shuffle request was sent to.
    pub target: NodeId,
    /// The descriptors that were sent (including the initiator's own).
    pub sent: Vec<Descriptor<P>>,
}

impl<P: Clone> CyclonNode<P> {
    /// Creates a Cyclon node with an empty view.
    ///
    /// `view_len` is the view capacity (`cyc` in the paper, 20 by default)
    /// and `shuffle_len` the number of descriptors exchanged per shuffle
    /// (`l`, at most `view_len`).
    ///
    /// # Panics
    ///
    /// Panics if `view_len == 0` or `shuffle_len == 0`.
    pub fn new(id: NodeId, profile: P, view_len: usize, shuffle_len: usize) -> Self {
        assert!(shuffle_len > 0, "shuffle length must be positive");
        CyclonNode {
            id,
            profile,
            view: View::new(id, view_len),
            shuffle_len: shuffle_len.min(view_len),
        }
    }

    /// Creates a Cyclon node with the paper's default parameters
    /// (`cyc = 20`, `l = 5`).
    pub fn with_defaults(id: NodeId, profile: P) -> Self {
        Self::new(id, profile, DEFAULT_VIEW_LENGTH, DEFAULT_SHUFFLE_LENGTH)
    }

    /// The local node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The local node's profile.
    pub fn profile(&self) -> &P {
        &self.profile
    }

    /// Read access to the current partial view.
    pub fn view(&self) -> &View<P> {
        &self.view
    }

    /// Adds a bootstrap contact (used when joining: a fresh node knows a
    /// single introducer, forming the star topology of the paper's setup).
    /// Returns `true` if the contact was added.
    pub fn add_bootstrap_contact(&mut self, contact: Descriptor<P>) -> bool {
        self.view.insert_or_refresh(contact)
    }

    /// Starts a new gossip cycle: ages every view entry by one.
    pub fn begin_cycle(&mut self) {
        self.view.increment_ages();
    }

    /// Initiates a shuffle: picks the oldest neighbour, removes it from the
    /// view and builds the request payload (own fresh descriptor plus up to
    /// `shuffle_len - 1` random other entries).
    ///
    /// Returns `None` when the view is empty (an isolated node cannot
    /// shuffle). The returned [`PendingShuffle`] must be fed back into
    /// [`CyclonNode::handle_shuffle_response`] (or
    /// [`CyclonNode::shuffle_failed`] if the target is unreachable).
    pub fn initiate_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Option<(NodeId, Vec<Descriptor<P>>)> {
        let target = self.view.oldest()?;
        // The target's descriptor leaves the view: if it is alive it will be
        // replaced by fresher information, if it is dead the link is gone.
        self.view.remove(target);

        let mut payload =
            self.view
                .random_descriptors(self.shuffle_len.saturating_sub(1), &[target], rng);
        payload.push(Descriptor::new(self.id, self.profile.clone()));
        Some((target, payload))
    }

    /// Returns the pending-state value corresponding to an
    /// [`CyclonNode::initiate_shuffle`] result, for callers that need to
    /// store it (the simulator passes it around explicitly).
    pub fn pending(target: NodeId, sent: Vec<Descriptor<P>>) -> PendingShuffle<P> {
        PendingShuffle { target, sent }
    }

    /// Handles an incoming shuffle request from `from`, returning the reply
    /// payload (up to `shuffle_len` random entries of the local view).
    ///
    /// The received descriptors are merged into the local view: empty slots
    /// are filled first, then the entries just sent in the reply are
    /// replaced, never evicting anything else.
    pub fn handle_shuffle_request<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        received: &[Descriptor<P>],
        rng: &mut R,
    ) -> Vec<Descriptor<P>> {
        let reply = self.view.random_descriptors(self.shuffle_len, &[from], rng);
        self.merge_received(received, &reply);
        reply
    }

    /// Handles the reply to a shuffle this node initiated.
    pub fn handle_shuffle_response(
        &mut self,
        pending: &PendingShuffle<P>,
        received: &[Descriptor<P>],
    ) {
        self.merge_received(received, &pending.sent);
    }

    /// Records that a shuffle initiated towards an unreachable peer failed.
    ///
    /// Cyclon needs no repair action: the target's descriptor was already
    /// removed when the shuffle was initiated, which is precisely how dead
    /// links leave the overlay.
    pub fn shuffle_failed(&mut self, _pending: &PendingShuffle<P>) {}

    /// Merges `received` descriptors into the view following the Cyclon
    /// rules: ignore self-descriptors and already-known nodes, fill empty
    /// slots first, then overwrite entries that were shipped out in `sent`.
    fn merge_received(&mut self, received: &[Descriptor<P>], sent: &[Descriptor<P>]) {
        let mut replaceable: Vec<NodeId> = sent
            .iter()
            .map(|d| d.id)
            .filter(|&id| id != self.id)
            .collect();
        for descriptor in received {
            if descriptor.id == self.id || self.view.contains(descriptor.id) {
                continue;
            }
            if self.view.insert(descriptor.clone()) {
                continue;
            }
            // View full: evict one of the descriptors we sent away, if any
            // are still present.
            let evicted = loop {
                match replaceable.pop() {
                    Some(candidate) => {
                        if self.view.remove(candidate).is_some() {
                            break true;
                        }
                    }
                    None => break false,
                }
            };
            if evicted {
                self.view.insert(descriptor.clone());
            }
        }
    }

    /// Drops a specific peer from the view (used by failure detectors or by
    /// the simulator when it knows a node is gone).
    pub fn forget_peer(&mut self, peer: NodeId) {
        self.view.remove(peer);
    }
}

impl<P: Clone> PeerSampling for CyclonNode<P> {
    fn local_id(&self) -> NodeId {
        self.id
    }

    fn known_peers(&self) -> Vec<NodeId> {
        self.view.node_ids()
    }

    fn sample_peers<R: Rng + ?Sized>(
        &self,
        count: usize,
        exclude: &[NodeId],
        rng: &mut R,
    ) -> Vec<NodeId> {
        self.view.random_ids(count, exclude, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    fn node_with_view(id: u64, peers: &[u64]) -> CyclonNode<()> {
        let mut node = CyclonNode::new(n(id), (), 20, 5);
        for &p in peers {
            node.add_bootstrap_contact(Descriptor::new(n(p), ()));
        }
        node
    }

    #[test]
    fn new_node_has_empty_view() {
        let node: CyclonNode<()> = CyclonNode::with_defaults(n(1), ());
        assert!(node.view().is_empty());
        assert_eq!(node.view().capacity(), DEFAULT_VIEW_LENGTH);
        assert_eq!(node.id(), n(1));
    }

    #[test]
    #[should_panic(expected = "shuffle length")]
    fn zero_shuffle_len_panics() {
        let _: CyclonNode<()> = CyclonNode::new(n(1), (), 20, 0);
    }

    #[test]
    fn shuffle_len_clamped_to_view_len() {
        let node: CyclonNode<()> = CyclonNode::new(n(1), (), 3, 10);
        assert_eq!(node.shuffle_len, 3);
    }

    #[test]
    fn isolated_node_cannot_initiate() {
        let mut node: CyclonNode<()> = CyclonNode::with_defaults(n(1), ());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(node.initiate_shuffle(&mut rng).is_none());
    }

    #[test]
    fn initiate_targets_oldest_and_removes_it() {
        let mut node = node_with_view(0, &[1, 2, 3]);
        // Age peer 2 the most.
        node.begin_cycle();
        node.view.remove(n(2));
        node.view.insert(Descriptor::with_age(n(2), 10, ()));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (target, payload) = node.initiate_shuffle(&mut rng).unwrap();
        assert_eq!(target, n(2));
        assert!(!node.view().contains(n(2)), "target removed from view");
        assert!(payload.iter().any(|d| d.id == n(0) && d.age == 0));
        assert!(payload.len() <= 5);
        assert!(
            payload.iter().all(|d| d.id != n(2)),
            "never send the target its own descriptor"
        );
    }

    #[test]
    fn request_reply_merge_keeps_invariants() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut a = node_with_view(0, &[1, 2, 3, 4]);
        let mut b = node_with_view(9, &[5, 6, 7, 8]);

        a.begin_cycle();
        b.begin_cycle();
        let (target, request) = a.initiate_shuffle(&mut rng).unwrap();
        let pending = CyclonNode::pending(target, request.clone());
        // Deliver to b even though target may differ; the protocol only
        // requires a shuffle partner.
        let reply = b.handle_shuffle_request(a.id(), &request, &mut rng);
        a.handle_shuffle_response(&pending, &reply);

        for node in [&a, &b] {
            let ids = node.view().node_ids();
            let mut dedup = ids.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(ids.len(), dedup.len(), "no duplicate view entries");
            assert!(!node.view().contains(node.id()), "no self entry");
            assert!(node.view().len() <= node.view().capacity());
        }
        // b learned about a.
        assert!(b.view().contains(n(0)));
    }

    #[test]
    fn merge_prefers_empty_slots_then_replaces_sent() {
        let mut node: CyclonNode<()> = CyclonNode::new(n(0), (), 3, 3);
        for p in [1, 2, 3] {
            node.add_bootstrap_contact(Descriptor::new(n(p), ()));
        }
        // View full. Pretend we sent descriptors for 1 and 2.
        let sent = vec![Descriptor::new(n(1), ()), Descriptor::new(n(2), ())];
        let received = vec![
            Descriptor::new(n(7), ()),
            Descriptor::new(n(8), ()),
            Descriptor::new(n(9), ()),
        ];
        node.merge_received(&received, &sent);
        assert_eq!(node.view().len(), 3);
        assert!(node.view().contains(n(3)), "unsent entry is never evicted");
        // Exactly two of the received entries fit (replacing 1 and 2).
        let received_present = [n(7), n(8), n(9)]
            .iter()
            .filter(|&&id| node.view().contains(id))
            .count();
        assert_eq!(received_present, 2);
    }

    #[test]
    fn merge_ignores_self_and_known() {
        let mut node = node_with_view(0, &[1]);
        let before = node.view().node_ids();
        node.merge_received(
            &[Descriptor::new(n(0), ()), Descriptor::with_age(n(1), 9, ())],
            &[],
        );
        assert_eq!(node.view().node_ids(), before);
        assert_eq!(
            node.view().get(n(1)).unwrap().age,
            0,
            "existing entry untouched"
        );
    }

    #[test]
    fn failed_shuffle_leaves_target_forgotten() {
        let mut node = node_with_view(0, &[1]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (target, sent) = node.initiate_shuffle(&mut rng).unwrap();
        let pending = CyclonNode::pending(target, sent);
        node.shuffle_failed(&pending);
        assert!(!node.view().contains(target));
    }

    #[test]
    fn peer_sampling_interface() {
        let node = node_with_view(0, &[1, 2, 3, 4, 5]);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(node.local_id(), n(0));
        assert_eq!(node.known_peers().len(), 5);
        let sample = node.sample_peers(3, &[n(1)], &mut rng);
        assert_eq!(sample.len(), 3);
        assert!(!sample.contains(&n(1)));
    }

    #[test]
    fn forget_peer_removes_entry() {
        let mut node = node_with_view(0, &[1, 2]);
        node.forget_peer(n(1));
        assert!(!node.view().contains(n(1)));
        assert!(node.view().contains(n(2)));
    }
}
