//! Bounded partial views of the network.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use hybridcast_graph::NodeId;

use crate::descriptor::Descriptor;

/// A bounded partial view: at most `capacity` descriptors of *other* nodes,
/// with no duplicates.
///
/// `View` is the data structure both Cyclon and Vicinity maintain. It keeps
/// the invariants the protocols rely on:
///
/// * never contains the owner (`owner` is rejected on insert),
/// * never contains two descriptors for the same node,
/// * never exceeds its capacity.
///
/// # Example
///
/// ```
/// use hybridcast_membership::{Descriptor, View};
/// use hybridcast_graph::NodeId;
///
/// let mut view: View<()> = View::new(NodeId::new(0), 3);
/// view.insert(Descriptor::new(NodeId::new(1), ()));
/// view.insert(Descriptor::new(NodeId::new(2), ()));
/// assert_eq!(view.len(), 2);
/// assert!(view.contains(NodeId::new(1)));
/// assert!(!view.insert(Descriptor::new(NodeId::new(0), ())), "never inserts the owner");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct View<P> {
    owner: NodeId,
    capacity: usize,
    entries: Vec<Descriptor<P>>,
}

impl<P: Clone> View<P> {
    /// Creates an empty view owned by `owner` with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        View {
            owner,
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// The node owning this view.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Maximum number of descriptors the view can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the view holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if the view is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Returns `true` if the view contains a descriptor for `id`.
    pub fn contains(&self, id: NodeId) -> bool {
        self.entries.iter().any(|d| d.id == id)
    }

    /// Returns the descriptor for `id`, if present.
    pub fn get(&self, id: NodeId) -> Option<&Descriptor<P>> {
        self.entries.iter().find(|d| d.id == id)
    }

    /// Iterates over the descriptors in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Descriptor<P>> {
        self.entries.iter()
    }

    /// Returns the node ids currently in the view.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.entries.iter().map(|d| d.id).collect()
    }

    /// Inserts a descriptor if there is room, it is not the owner and the
    /// node is not already present. Returns `true` if the descriptor was
    /// added.
    pub fn insert(&mut self, descriptor: Descriptor<P>) -> bool {
        if descriptor.id == self.owner || self.contains(descriptor.id) || self.is_full() {
            return false;
        }
        self.entries.push(descriptor);
        true
    }

    /// Inserts a descriptor, or — if a descriptor for the same node already
    /// exists — keeps whichever of the two is *younger* (smaller age).
    /// Returns `true` if the view changed.
    pub fn insert_or_refresh(&mut self, descriptor: Descriptor<P>) -> bool {
        if descriptor.id == self.owner {
            return false;
        }
        if let Some(existing) = self.entries.iter_mut().find(|d| d.id == descriptor.id) {
            if descriptor.age < existing.age {
                *existing = descriptor;
                return true;
            }
            return false;
        }
        if self.is_full() {
            return false;
        }
        self.entries.push(descriptor);
        true
    }

    /// Removes the descriptor for `id`, returning it if it was present.
    pub fn remove(&mut self, id: NodeId) -> Option<Descriptor<P>> {
        let pos = self.entries.iter().position(|d| d.id == id)?;
        Some(self.entries.remove(pos))
    }

    /// Removes and returns all descriptors, leaving the view empty.
    pub fn drain(&mut self) -> Vec<Descriptor<P>> {
        std::mem::take(&mut self.entries)
    }

    /// Increments the age of every descriptor by one cycle.
    pub fn increment_ages(&mut self) {
        for d in &mut self.entries {
            d.increment_age();
        }
    }

    /// Returns the id of the descriptor with the highest age (ties broken by
    /// lower node id for determinism), or `None` if the view is empty.
    pub fn oldest(&self) -> Option<NodeId> {
        oldest_descriptor_index(self.entries.iter().map(|d| (d.id.as_u64(), d.age)))
            .map(|i| self.entries[i].id)
    }

    /// Returns up to `count` node ids drawn uniformly at random without
    /// replacement, excluding any id in `exclude`.
    pub fn random_ids<R: Rng + ?Sized>(
        &self,
        count: usize,
        exclude: &[NodeId],
        rng: &mut R,
    ) -> Vec<NodeId> {
        let mut candidates: Vec<NodeId> = self
            .entries
            .iter()
            .map(|d| d.id)
            .filter(|id| !exclude.contains(id))
            .collect();
        candidates.shuffle(rng);
        candidates.truncate(count);
        candidates
    }

    /// Returns up to `count` descriptors drawn uniformly at random without
    /// replacement, excluding any node in `exclude`.
    pub fn random_descriptors<R: Rng + ?Sized>(
        &self,
        count: usize,
        exclude: &[NodeId],
        rng: &mut R,
    ) -> Vec<Descriptor<P>> {
        let mut candidates: Vec<Descriptor<P>> = self
            .entries
            .iter()
            .filter(|d| !exclude.contains(&d.id))
            .cloned()
            .collect();
        candidates.shuffle(rng);
        candidates.truncate(count);
        candidates
    }

    /// One uniformly random node id from the view, if any.
    pub fn random_id<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        self.entries.choose(rng).map(|d| d.id)
    }

    /// Replaces the whole content of the view with (at most `capacity` of)
    /// the given descriptors, filtering out the owner and duplicates.
    pub fn replace_with(&mut self, descriptors: Vec<Descriptor<P>>) {
        self.entries.clear();
        for d in descriptors {
            if self.is_full() {
                break;
            }
            self.insert(d);
        }
    }

    /// Retains only the descriptors for which `keep` returns `true`.
    pub fn retain<F: FnMut(&Descriptor<P>) -> bool>(&mut self, keep: F) {
        self.entries.retain(keep);
    }
}

/// The index of the oldest `(id, age)` descriptor — highest age, ties broken
/// by **lower** node id — or `None` for an empty iterator.
///
/// This is the protocol's oldest-neighbour selection rule (Cyclon picks its
/// shuffle target this way, Vicinity its exchange partner), kept in one
/// place so every runtime agrees on the tie-break: [`View::oldest`]
/// delegates here, and the arena-based simulation runtime applies the same
/// function to its flat descriptor slices.
pub fn oldest_descriptor_index(entries: impl IntoIterator<Item = (u64, u32)>) -> Option<usize> {
    let mut best: Option<(usize, u64, u32)> = None;
    for (i, (id, age)) in entries.into_iter().enumerate() {
        let replace = match best {
            None => true,
            Some((_, bid, bage)) => age > bage || (age == bage && id < bid),
        };
        if replace {
            best = Some((i, id, age));
        }
    }
    best.map(|(i, _, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    fn view_with(ids: &[u64]) -> View<()> {
        let mut v = View::new(n(0), 10);
        for &i in ids {
            v.insert(Descriptor::new(n(i), ()));
        }
        v
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _: View<()> = View::new(n(0), 0);
    }

    #[test]
    fn insert_rejects_owner_duplicates_and_overflow() {
        let mut v: View<()> = View::new(n(0), 2);
        assert!(!v.insert(Descriptor::new(n(0), ())), "owner rejected");
        assert!(v.insert(Descriptor::new(n(1), ())));
        assert!(!v.insert(Descriptor::new(n(1), ())), "duplicate rejected");
        assert!(v.insert(Descriptor::new(n(2), ())));
        assert!(!v.insert(Descriptor::new(n(3), ())), "overflow rejected");
        assert_eq!(v.len(), 2);
        assert!(v.is_full());
    }

    #[test]
    fn insert_or_refresh_keeps_younger_descriptor() {
        let mut v: View<()> = View::new(n(0), 4);
        v.insert(Descriptor::with_age(n(1), 5, ()));
        assert!(v.insert_or_refresh(Descriptor::with_age(n(1), 2, ())));
        assert_eq!(v.get(n(1)).unwrap().age, 2);
        assert!(!v.insert_or_refresh(Descriptor::with_age(n(1), 9, ())));
        assert_eq!(v.get(n(1)).unwrap().age, 2);
    }

    #[test]
    fn remove_returns_descriptor() {
        let mut v = view_with(&[1, 2, 3]);
        let removed = v.remove(n(2)).expect("present");
        assert_eq!(removed.id, n(2));
        assert!(!v.contains(n(2)));
        assert!(v.remove(n(2)).is_none());
    }

    #[test]
    fn ages_and_oldest() {
        let mut v: View<()> = View::new(n(0), 5);
        v.insert(Descriptor::with_age(n(1), 1, ()));
        v.insert(Descriptor::with_age(n(2), 4, ()));
        v.insert(Descriptor::with_age(n(3), 4, ()));
        assert_eq!(v.oldest(), Some(n(2)), "ties broken toward lower id");
        v.increment_ages();
        assert_eq!(v.get(n(1)).unwrap().age, 2);
        assert!(view_with(&[]).oldest().is_none());
    }

    #[test]
    fn random_selection_excludes_and_bounds() {
        let v = view_with(&[1, 2, 3, 4, 5]);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let picked = v.random_ids(3, &[n(2), n(4)], &mut rng);
        assert_eq!(picked.len(), 3);
        assert!(!picked.contains(&n(2)));
        assert!(!picked.contains(&n(4)));

        let all = v.random_ids(10, &[], &mut rng);
        assert_eq!(all.len(), 5, "bounded by view size");

        let descs = v.random_descriptors(2, &[n(1)], &mut rng);
        assert_eq!(descs.len(), 2);
        assert!(descs.iter().all(|d| d.id != n(1)));
    }

    #[test]
    fn replace_with_filters_owner_and_duplicates() {
        let mut v: View<()> = View::new(n(0), 3);
        v.insert(Descriptor::new(n(9), ()));
        v.replace_with(vec![
            Descriptor::new(n(0), ()),
            Descriptor::new(n(1), ()),
            Descriptor::new(n(1), ()),
            Descriptor::new(n(2), ()),
            Descriptor::new(n(3), ()),
            Descriptor::new(n(4), ()),
        ]);
        assert!(!v.contains(n(9)), "old content replaced");
        assert!(!v.contains(n(0)));
        assert_eq!(v.len(), 3, "bounded by capacity");
        assert!(v.contains(n(1)));
        assert!(v.contains(n(2)));
        assert!(v.contains(n(3)));
    }

    #[test]
    fn drain_empties_the_view() {
        let mut v = view_with(&[1, 2]);
        let drained = v.drain();
        assert_eq!(drained.len(), 2);
        assert!(v.is_empty());
    }

    #[test]
    fn retain_filters_entries() {
        let mut v = view_with(&[1, 2, 3, 4]);
        v.retain(|d| d.id.as_u64() % 2 == 0);
        assert_eq!(v.node_ids(), vec![n(2), n(4)]);
    }
}
