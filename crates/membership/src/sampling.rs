//! The peer sampling service abstraction.
//!
//! The RandCast and RingCast dissemination protocols only need a small,
//! continuously refreshed random sample of the network (the r-links). This
//! trait captures that requirement so that the dissemination layer does not
//! depend on a particular membership protocol: Cyclon is the instance used
//! throughout the paper and this workspace, but any implementation of
//! [`PeerSampling`] can be plugged in (e.g. a static random overlay in unit
//! tests).

use rand::Rng;

use hybridcast_graph::NodeId;

/// A local view over a peer sampling service, as seen by one node.
///
/// Implementations return peers from the node's current partial view; the
/// sampling quality (how close the overlay is to a uniform random graph) is
/// the responsibility of the underlying protocol.
pub trait PeerSampling {
    /// The node this sampler belongs to.
    fn local_id(&self) -> NodeId;

    /// All peers currently known to the sampler (the raw partial view).
    fn known_peers(&self) -> Vec<NodeId>;

    /// Up to `count` distinct peers chosen uniformly at random from the
    /// current view, never including `exclude` entries or the local node.
    fn sample_peers<R: Rng + ?Sized>(
        &self,
        count: usize,
        exclude: &[NodeId],
        rng: &mut R,
    ) -> Vec<NodeId>;

    /// Convenience: a single random peer, if the view is non-empty.
    fn sample_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        self.sample_peers(1, &[], rng).into_iter().next()
    }
}

/// A trivial [`PeerSampling`] implementation over a fixed peer list.
///
/// Useful in tests and in the deterministic baseline experiments where the
/// overlay is frozen: the "view" is simply a static list of peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticSampler {
    id: NodeId,
    peers: Vec<NodeId>,
}

impl StaticSampler {
    /// Creates a sampler for `id` over the given fixed peer list; `id`
    /// itself and duplicates are filtered out.
    pub fn new(id: NodeId, peers: impl IntoIterator<Item = NodeId>) -> Self {
        let mut filtered = Vec::new();
        for p in peers {
            if p != id && !filtered.contains(&p) {
                filtered.push(p);
            }
        }
        StaticSampler {
            id,
            peers: filtered,
        }
    }
}

impl PeerSampling for StaticSampler {
    fn local_id(&self) -> NodeId {
        self.id
    }

    fn known_peers(&self) -> Vec<NodeId> {
        self.peers.clone()
    }

    fn sample_peers<R: Rng + ?Sized>(
        &self,
        count: usize,
        exclude: &[NodeId],
        rng: &mut R,
    ) -> Vec<NodeId> {
        use rand::seq::SliceRandom;
        let mut candidates: Vec<NodeId> = self
            .peers
            .iter()
            .copied()
            .filter(|p| !exclude.contains(p))
            .collect();
        candidates.shuffle(rng);
        candidates.truncate(count);
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn static_sampler_filters_self_and_duplicates() {
        let s = StaticSampler::new(n(0), [n(0), n(1), n(1), n(2)]);
        assert_eq!(s.local_id(), n(0));
        assert_eq!(s.known_peers(), vec![n(1), n(2)]);
    }

    #[test]
    fn sampling_respects_count_and_exclusions() {
        let s = StaticSampler::new(n(0), (1..=10).map(n));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sample = s.sample_peers(4, &[n(1), n(2)], &mut rng);
        assert_eq!(sample.len(), 4);
        assert!(!sample.contains(&n(1)));
        assert!(!sample.contains(&n(2)));

        let tiny = StaticSampler::new(n(0), [n(5)]);
        assert_eq!(tiny.sample_peer(&mut rng), Some(n(5)));
        let empty = StaticSampler::new(n(0), []);
        assert_eq!(empty.sample_peer(&mut rng), None);
    }
}
