//! Proximity metrics and ring-key spaces for the Vicinity layer.
//!
//! RingCast organizes nodes in a global bidirectional ring ordered by an
//! *arbitrarily chosen* sequence identifier (Section 6 of the paper). The
//! Vicinity protocol converges each node's view to the peers *closest* to it
//! in that identifier space; the two closest — the direct successor and the
//! direct predecessor in the circular order — become the node's d-links.
//!
//! Two key spaces are provided:
//!
//! * [`RingPosition`] — a random 64-bit integer; the default used by the
//!   evaluation harness and the simulator.
//! * [`DomainKey`] — the reversed-domain-name key from the paper's
//!   "proximity-based dissemination" discussion (Section 8): nodes order
//!   themselves by reversed domain name (country first) so that the ring
//!   naturally clusters domains and countries.
//!
//! Both are ordinary `Ord` types: the ring order is the circular extension
//! of their total order, which is all [`ring_neighbors`] and
//! [`rank_by_ring_distance`] need.

use std::fmt;

use serde::{Deserialize, Serialize};

use hybridcast_graph::NodeId;

use crate::descriptor::Descriptor;

/// A position on the RingCast identifier ring: a plain 64-bit integer drawn
/// uniformly at random when a node joins.
pub type RingPosition = u64;

/// Circular (wrap-around) distance between two [`RingPosition`]s: the length
/// of the shorter arc between them on the 2^64 ring.
///
/// # Example
///
/// ```
/// use hybridcast_membership::proximity::circular_distance;
///
/// assert_eq!(circular_distance(10, 14), 4);
/// assert_eq!(circular_distance(14, 10), 4);
/// assert_eq!(circular_distance(u64::MAX, 0), 1, "the ring wraps around");
/// ```
pub fn circular_distance(a: RingPosition, b: RingPosition) -> u64 {
    let clockwise = b.wrapping_sub(a);
    let counter = a.wrapping_sub(b);
    clockwise.min(counter)
}

/// The reversed-domain-name ring key sketched in Section 8 of the paper.
///
/// A node in `inf.ethz.ch` with nonce 1234 gets the key
/// `ch.ethz.inf.1234`: sorting these keys groups nodes by country, then
/// organisation, then department, so a dissemination walking the ring visits
/// whole domains consecutively instead of criss-crossing the planet.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DomainKey {
    /// Domain labels in reversed order (`["ch", "ethz", "inf"]`).
    pub reversed_labels: Vec<String>,
    /// Random disambiguator appended after the domain labels.
    pub nonce: u64,
}

impl DomainKey {
    /// Builds a key from a regular domain name (`"inf.ethz.ch"`) and a
    /// random nonce.
    ///
    /// Empty labels are dropped, so `"example..com"` and `"example.com"`
    /// produce the same key.
    pub fn from_domain(domain: &str, nonce: u64) -> Self {
        let mut reversed_labels: Vec<String> = domain
            .split('.')
            .filter(|label| !label.is_empty())
            .map(|label| label.to_ascii_lowercase())
            .collect();
        reversed_labels.reverse();
        DomainKey {
            reversed_labels,
            nonce,
        }
    }

    /// Returns the country-level label (the first reversed label), if any.
    pub fn country(&self) -> Option<&str> {
        self.reversed_labels.first().map(String::as_str)
    }

    /// Returns `true` if both keys belong to the same full domain (all
    /// labels equal, nonce ignored).
    pub fn same_domain(&self, other: &DomainKey) -> bool {
        self.reversed_labels == other.reversed_labels
    }
}

impl fmt::Display for DomainKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for label in &self.reversed_labels {
            write!(f, "{label}.")?;
        }
        write!(f, "{}", self.nonce)
    }
}

/// Ranks `candidates` by how close they are to `own_key` on the ring defined
/// by the circular extension of `K`'s total order, closest first.
///
/// "Close" alternates sides: the direct successor and direct predecessor
/// come first, then the second successor and second predecessor, and so on.
/// This is the selection function Vicinity uses to decide which descriptors
/// to keep: retaining the `k` highest-ranked candidates keeps `k / 2`
/// neighbours on each side of the ring, which is exactly what is needed to
/// maintain (and repair) a bidirectional ring under churn.
///
/// Candidates with the same key as `own_key` are ranked by node id so the
/// order stays total and deterministic.
pub fn rank_by_ring_distance<K: Ord + Clone, P>(
    own_key: &K,
    candidates: &[(K, NodeId, P)],
) -> Vec<(K, NodeId, P)>
where
    P: Clone,
{
    // Successors: keys > own, ascending; then wrap to the smallest keys.
    // Predecessors: keys < own, descending; then wrap to the largest keys.
    let mut sorted: Vec<(K, NodeId, P)> = candidates.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

    let split = sorted.partition_point(|entry| entry.0 <= *own_key);
    // Clockwise order starting just after own_key (wrapping).
    let clockwise: Vec<(K, NodeId, P)> = sorted[split..]
        .iter()
        .chain(sorted[..split].iter())
        .cloned()
        .collect();
    // Counter-clockwise order starting just before own_key (wrapping).
    let counter: Vec<(K, NodeId, P)> = sorted[..split]
        .iter()
        .rev()
        .chain(sorted[split..].iter().rev())
        .cloned()
        .collect();

    let mut ranked = Vec::with_capacity(candidates.len());
    let mut seen: Vec<NodeId> = Vec::with_capacity(candidates.len());
    let mut cw = clockwise.into_iter();
    let mut ccw = counter.into_iter();
    loop {
        let mut progressed = false;
        for iter in [&mut cw, &mut ccw] {
            for entry in iter.by_ref() {
                if !seen.contains(&entry.1) {
                    seen.push(entry.1);
                    ranked.push(entry);
                    progressed = true;
                    break;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    ranked
}

/// Scratch-reusing variant of [`rank_by_ring_distance`] for candidate pools
/// with **unique node ids** (which is what every view and merge pool in this
/// workspace guarantees): ranks `entries` into `ranked`, closest first,
/// alternating successor/predecessor sides exactly like the generic
/// function, but without allocating — `entries`, `taken` and `ranked` are
/// caller-owned buffers that get cleared/overwritten and can be reused
/// across calls.
///
/// The third tuple element is the descriptor age (carried through
/// untouched), which is what the arena-based simulation runtime needs; for
/// id-unique pools the output order is identical to
/// `rank_by_ring_distance(own_key, entries)`.
pub fn rank_by_ring_distance_into<K: Ord + Copy>(
    own_key: &K,
    entries: &mut [(K, NodeId, u32)],
    taken: &mut Vec<bool>,
    ranked: &mut Vec<(K, NodeId, u32)>,
) {
    ranked.clear();
    let n = entries.len();
    if n == 0 {
        return;
    }
    // Unique ids make (key, id) a total order, so an unstable sort is
    // equivalent to the generic function's stable one.
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let split = entries.partition_point(|entry| entry.0 <= *own_key);

    taken.clear();
    taken.resize(n, false);
    // Clockwise walk: sorted indices split, split+1, ..., wrapping to 0.
    // Counter-clockwise walk: split-1, split-2, ..., wrapping to n-1.
    let mut cw = 0usize;
    let mut ccw = 0usize;
    loop {
        let mut progressed = false;
        while cw < n {
            let i = (split + cw) % n;
            cw += 1;
            if !taken[i] {
                taken[i] = true;
                ranked.push(entries[i]);
                progressed = true;
                break;
            }
        }
        while ccw < n {
            let i = (split + n - 1 - ccw) % n;
            ccw += 1;
            if !taken[i] {
                taken[i] = true;
                ranked.push(entries[i]);
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }
}

/// The direct ring neighbours of a node among `candidates`: `(predecessor,
/// successor)` in the circular order of keys.
///
/// Returns `None` components when there are no candidates. With a single
/// candidate both neighbours are that candidate (a two-node ring).
pub fn ring_neighbors<K: Ord + Clone>(
    own_key: &K,
    candidates: &[(K, NodeId)],
) -> (Option<NodeId>, Option<NodeId>) {
    if candidates.is_empty() {
        return (None, None);
    }
    let mut sorted: Vec<(K, NodeId)> = candidates.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

    let split = sorted.partition_point(|entry| entry.0 <= *own_key);
    let successor = sorted
        .get(split)
        .or_else(|| sorted.first())
        .map(|entry| entry.1);
    let predecessor = if split == 0 {
        sorted.last().map(|entry| entry.1)
    } else {
        sorted.get(split - 1).map(|entry| entry.1)
    };
    (predecessor, successor)
}

/// Convenience: extracts `(profile, id)` pairs from descriptors for use with
/// [`ring_neighbors`].
pub fn descriptor_keys<P: Clone>(descriptors: &[Descriptor<P>]) -> Vec<(P, NodeId)> {
    descriptors
        .iter()
        .map(|d| (d.profile.clone(), d.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn circular_distance_is_symmetric_and_wraps() {
        assert_eq!(circular_distance(5, 5), 0);
        assert_eq!(circular_distance(0, u64::MAX), 1);
        assert_eq!(circular_distance(100, 50), 50);
        assert_eq!(
            circular_distance(u64::MAX - 10, 10),
            21,
            "short arc across the wrap point"
        );
    }

    #[test]
    fn domain_key_ordering_groups_by_country_then_org() {
        let ch1 = DomainKey::from_domain("inf.ethz.ch", 5);
        let ch2 = DomainKey::from_domain("phys.ethz.ch", 1);
        let nl = DomainKey::from_domain("few.vu.nl", 9);
        let mut keys = vec![nl.clone(), ch2.clone(), ch1.clone()];
        keys.sort();
        assert_eq!(keys, vec![ch1.clone(), ch2, nl]);
        assert_eq!(ch1.country(), Some("ch"));
        assert_eq!(ch1.to_string(), "ch.ethz.inf.5");
    }

    #[test]
    fn domain_key_same_domain_ignores_nonce() {
        let a = DomainKey::from_domain("inf.ethz.ch", 1);
        let b = DomainKey::from_domain("INF.ethz.CH", 2);
        assert!(a.same_domain(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn domain_key_drops_empty_labels() {
        let a = DomainKey::from_domain("example..com", 0);
        let b = DomainKey::from_domain("example.com", 0);
        assert_eq!(a, b);
    }

    #[test]
    fn ring_neighbors_basic() {
        // Ring order by key: 10(n1) 20(n2) 30(n3) 40(n4)
        let candidates = vec![(10u64, n(1)), (20, n(2)), (30, n(3)), (40, n(4))];
        let (pred, succ) = ring_neighbors(&25u64, &candidates);
        assert_eq!(pred, Some(n(2)));
        assert_eq!(succ, Some(n(3)));
    }

    #[test]
    fn ring_neighbors_wrap_around() {
        let candidates = vec![(10u64, n(1)), (20, n(2)), (30, n(3))];
        // Own key larger than everything: successor wraps to the smallest.
        let (pred, succ) = ring_neighbors(&99u64, &candidates);
        assert_eq!(pred, Some(n(3)));
        assert_eq!(succ, Some(n(1)));
        // Own key smaller than everything: predecessor wraps to the largest.
        let (pred, succ) = ring_neighbors(&1u64, &candidates);
        assert_eq!(pred, Some(n(3)));
        assert_eq!(succ, Some(n(1)));
    }

    #[test]
    fn ring_neighbors_degenerate_cases() {
        let empty: Vec<(u64, NodeId)> = Vec::new();
        assert_eq!(ring_neighbors(&5u64, &empty), (None, None));
        let single = vec![(10u64, n(1))];
        assert_eq!(ring_neighbors(&5u64, &single), (Some(n(1)), Some(n(1))));
    }

    #[test]
    fn rank_alternates_sides() {
        // Own key 50. Ring: 10 20 40 | 60 80 90
        let candidates: Vec<(u64, NodeId, ())> = vec![
            (10, n(1), ()),
            (20, n(2), ()),
            (40, n(4), ()),
            (60, n(6), ()),
            (80, n(8), ()),
            (90, n(9), ()),
        ];
        let ranked = rank_by_ring_distance(&50u64, &candidates);
        let ids: Vec<NodeId> = ranked.iter().map(|e| e.1).collect();
        // successor first (60), then predecessor (40), then 80, 20, 90, 10.
        assert_eq!(ids, vec![n(6), n(4), n(8), n(2), n(9), n(1)]);
    }

    #[test]
    fn rank_into_matches_generic_rank_on_id_unique_pools() {
        // Exhaustive-ish sweep: every split position, duplicated keys, own
        // key present in the pool, both tiny and larger pools.
        let pools: Vec<Vec<(u64, NodeId, u32)>> = vec![
            vec![],
            vec![(10, n(1), 3)],
            vec![(10, n(1), 0), (10, n(2), 1), (30, n(3), 2)],
            vec![
                (10, n(1), 0),
                (20, n(2), 9),
                (40, n(4), 1),
                (60, n(6), 7),
                (80, n(8), 2),
                (90, n(9), 5),
            ],
            (0..17u64).map(|i| (i * 13 % 7, n(i), i as u32)).collect(),
        ];
        let mut entries = Vec::new();
        let mut taken = Vec::new();
        let mut ranked = Vec::new();
        for pool in &pools {
            for own in [0u64, 5, 10, 35, 50, 99, u64::MAX] {
                let expected = rank_by_ring_distance(&own, pool);
                entries.clear();
                entries.extend_from_slice(pool);
                rank_by_ring_distance_into(&own, &mut entries, &mut taken, &mut ranked);
                assert_eq!(ranked, expected, "own key {own}, pool {pool:?}");
            }
        }
    }

    #[test]
    fn rank_handles_duplicated_keys_and_no_duplicate_ids() {
        let candidates: Vec<(u64, NodeId, ())> =
            vec![(10, n(1), ()), (10, n(2), ()), (30, n(3), ())];
        let ranked = rank_by_ring_distance(&10u64, &candidates);
        assert_eq!(ranked.len(), 3);
        let mut ids: Vec<NodeId> = ranked.iter().map(|e| e.1).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 3, "every candidate appears exactly once");
    }

    #[test]
    fn descriptor_keys_extracts_pairs() {
        let descs = vec![
            Descriptor::new(n(1), 100u64),
            Descriptor::with_age(n(2), 3, 200u64),
        ];
        assert_eq!(descriptor_keys(&descs), vec![(100, n(1)), (200, n(2))]);
    }
}
