//! The generic peer-sampling framework of Jelasity et al. (Middleware 2004),
//! which the paper cites as reference \[10\] for the PEER SAMPLING SERVICE.
//!
//! The framework describes a whole design space of gossip-based peer
//! sampling protocols through three policy dimensions:
//!
//! * **peer selection** ([`PeerSelection`]) — who to gossip with: a random
//!   view entry (`Rand`) or the oldest one (`Tail`);
//! * **view propagation** ([`ViewPropagation`]) — `Push` (send your
//!   descriptors, expect nothing back) or `PushPull` (exchange both ways);
//! * **view selection** ([`ViewSelection`]) — how the merged view is pruned
//!   back to capacity: `Blind` (random), `Healer` (drop the oldest
//!   descriptors first) or `Swapper` (drop the descriptors just sent).
//!
//! Cyclon (implemented in [`crate::cyclon`]) corresponds roughly to
//! *(tail, push-pull, swapper)* with an additional in-place-replacement
//! rule. The generic node here, [`FrameworkNode`], lets experiments swap in
//! any other point of the design space as the r-link provider — useful for
//! checking that RandCast/RingCast results do not hinge on the particular
//! peer-sampling instance, and for reproducing the framework's own known
//! behaviours (e.g. `Blind` selection producing star-like in-degree
//! distributions).

use rand::Rng;
use serde::{Deserialize, Serialize};

use hybridcast_graph::NodeId;

use crate::descriptor::Descriptor;
use crate::sampling::PeerSampling;
use crate::view::View;

/// Who a node gossips with in each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerSelection {
    /// A uniformly random view entry.
    Rand,
    /// The entry with the highest age (bounds staleness, heals faster).
    Tail,
}

/// How descriptors travel during an exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViewPropagation {
    /// The initiator pushes descriptors; the peer answers nothing.
    Push,
    /// Both sides exchange descriptors (the usual choice; push-only halves
    /// the information flow and converges noticeably slower).
    PushPull,
}

/// How a node prunes its merged view back to capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViewSelection {
    /// Drop uniformly random entries.
    Blind,
    /// Drop the oldest entries first (self-healing under failures).
    Healer,
    /// Drop the entries that were just sent to the peer (keeps the overlay
    /// close to a random graph; Cyclon's choice).
    Swapper,
}

/// A full policy triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingPolicy {
    /// Peer-selection dimension.
    pub peer_selection: PeerSelection,
    /// View-propagation dimension.
    pub view_propagation: ViewPropagation,
    /// View-selection dimension.
    pub view_selection: ViewSelection,
}

impl SamplingPolicy {
    /// The policy closest to Cyclon: tail peer selection, push-pull
    /// propagation, swapper view selection.
    pub fn cyclon_like() -> Self {
        SamplingPolicy {
            peer_selection: PeerSelection::Tail,
            view_propagation: ViewPropagation::PushPull,
            view_selection: ViewSelection::Swapper,
        }
    }

    /// The most failure-tolerant corner of the design space: tail,
    /// push-pull, healer.
    pub fn healer() -> Self {
        SamplingPolicy {
            peer_selection: PeerSelection::Tail,
            view_propagation: ViewPropagation::PushPull,
            view_selection: ViewSelection::Healer,
        }
    }

    /// The simplest corner: random peer, push-pull, blind pruning.
    pub fn blind() -> Self {
        SamplingPolicy {
            peer_selection: PeerSelection::Rand,
            view_propagation: ViewPropagation::PushPull,
            view_selection: ViewSelection::Blind,
        }
    }
}

/// Pending state of an exchange this node initiated: what was sent, to whom.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingExchange<P> {
    /// The peer the exchange was sent to.
    pub target: NodeId,
    /// The descriptors sent.
    pub sent: Vec<Descriptor<P>>,
}

/// One node running the generic peer-sampling framework.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameworkNode<P> {
    id: NodeId,
    profile: P,
    policy: SamplingPolicy,
    view: View<P>,
    exchange_len: usize,
}

impl<P: Clone> FrameworkNode<P> {
    /// Creates a node with an empty view.
    ///
    /// # Panics
    ///
    /// Panics if `view_len == 0` or `exchange_len == 0`.
    pub fn new(
        id: NodeId,
        profile: P,
        policy: SamplingPolicy,
        view_len: usize,
        exchange_len: usize,
    ) -> Self {
        assert!(exchange_len > 0, "exchange length must be positive");
        FrameworkNode {
            id,
            profile,
            policy,
            view: View::new(id, view_len),
            exchange_len: exchange_len.min(view_len),
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The policy this node runs.
    pub fn policy(&self) -> SamplingPolicy {
        self.policy
    }

    /// Read access to the current view.
    pub fn view(&self) -> &View<P> {
        &self.view
    }

    /// Adds a bootstrap contact.
    pub fn add_bootstrap_contact(&mut self, contact: Descriptor<P>) -> bool {
        self.view.insert_or_refresh(contact)
    }

    /// Starts a new cycle: ages every descriptor.
    pub fn begin_cycle(&mut self) {
        self.view.increment_ages();
    }

    /// Selects the gossip partner for this cycle according to the policy.
    pub fn select_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        match self.policy.peer_selection {
            PeerSelection::Rand => self.view.random_id(rng),
            PeerSelection::Tail => self.view.oldest(),
        }
    }

    /// Builds the descriptors to send to `target`: a fresh self-descriptor
    /// plus up to `exchange_len - 1` random view entries.
    pub fn build_payload<R: Rng + ?Sized>(
        &self,
        target: NodeId,
        rng: &mut R,
    ) -> Vec<Descriptor<P>> {
        let mut payload =
            self.view
                .random_descriptors(self.exchange_len.saturating_sub(1), &[target], rng);
        payload.push(Descriptor::new(self.id, self.profile.clone()));
        payload
    }

    /// Initiates an exchange: picks a peer and the payload for it.
    /// Returns `None` when the view is empty.
    pub fn initiate<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Option<(NodeId, Vec<Descriptor<P>>)> {
        let target = self.select_peer(rng)?;
        let payload = self.build_payload(target, rng);
        Some((target, payload))
    }

    /// Handles an incoming exchange: merges the received descriptors and —
    /// under push-pull propagation — returns the reply payload.
    pub fn handle_request<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        received: &[Descriptor<P>],
        rng: &mut R,
    ) -> Vec<Descriptor<P>> {
        let reply = match self.policy.view_propagation {
            ViewPropagation::Push => Vec::new(),
            ViewPropagation::PushPull => self.build_payload(from, rng),
        };
        self.merge(received, &reply, rng);
        reply
    }

    /// Handles the reply to an exchange this node initiated.
    pub fn handle_response<R: Rng + ?Sized>(
        &mut self,
        pending: &PendingExchange<P>,
        received: &[Descriptor<P>],
        rng: &mut R,
    ) {
        self.merge(received, &pending.sent, rng);
    }

    /// Records a failed exchange. Under `Tail` peer selection the
    /// unresponsive peer is dropped (it was the most suspicious entry
    /// anyway); under `Rand` selection nothing is done.
    pub fn exchange_failed(&mut self, pending: &PendingExchange<P>) {
        if self.policy.peer_selection == PeerSelection::Tail {
            self.view.remove(pending.target);
        }
    }

    /// Merges `received` into the view and prunes back to capacity
    /// according to the view-selection policy. `sent` is needed by the
    /// `Swapper` policy (it drops exactly what was shipped out).
    fn merge<R: Rng + ?Sized>(
        &mut self,
        received: &[Descriptor<P>],
        sent: &[Descriptor<P>],
        rng: &mut R,
    ) {
        // Collect current + received, dedup by id keeping the youngest.
        let mut pool: Vec<Descriptor<P>> = self.view.iter().cloned().collect();
        for d in received {
            if d.id == self.id {
                continue;
            }
            match pool.iter_mut().find(|existing| existing.id == d.id) {
                Some(existing) => {
                    if d.age < existing.age {
                        *existing = d.clone();
                    }
                }
                None => pool.push(d.clone()),
            }
        }

        let capacity = self.view.capacity();
        while pool.len() > capacity {
            let victim_index = match self.policy.view_selection {
                ViewSelection::Blind => rng.gen_range(0..pool.len()),
                ViewSelection::Healer => pool
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, d)| d.age)
                    .map(|(i, _)| i)
                    .expect("pool is non-empty"),
                ViewSelection::Swapper => {
                    // Prefer dropping a descriptor we just sent away; fall
                    // back to the oldest when none is left in the pool.
                    pool.iter()
                        .enumerate()
                        .find(|(_, d)| sent.iter().any(|s| s.id == d.id) && d.id != self.id)
                        .map(|(i, _)| i)
                        .unwrap_or_else(|| {
                            pool.iter()
                                .enumerate()
                                .max_by_key(|(_, d)| d.age)
                                .map(|(i, _)| i)
                                .expect("pool is non-empty")
                        })
                }
            };
            pool.swap_remove(victim_index);
        }
        self.view.replace_with(pool);
    }
}

impl<P: Clone> PeerSampling for FrameworkNode<P> {
    fn local_id(&self) -> NodeId {
        self.id
    }

    fn known_peers(&self) -> Vec<NodeId> {
        self.view.node_ids()
    }

    fn sample_peers<R: Rng + ?Sized>(
        &self,
        count: usize,
        exclude: &[NodeId],
        rng: &mut R,
    ) -> Vec<NodeId> {
        self.view.random_ids(count, exclude, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    fn node(id: u64, policy: SamplingPolicy) -> FrameworkNode<()> {
        FrameworkNode::new(n(id), (), policy, 6, 3)
    }

    /// Runs `cycles` gossip cycles over a small population under the given
    /// policy and returns the nodes.
    fn converge(policy: SamplingPolicy, population: u64, cycles: usize) -> Vec<FrameworkNode<()>> {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut nodes: Vec<FrameworkNode<()>> = (0..population).map(|i| node(i, policy)).collect();
        for node in nodes.iter_mut().skip(1) {
            node.add_bootstrap_contact(Descriptor::new(n(0), ()));
        }
        for _ in 0..cycles {
            for i in 0..population as usize {
                nodes[i].begin_cycle();
                if let Some((target, payload)) = nodes[i].initiate(&mut rng) {
                    let pending = PendingExchange {
                        target,
                        sent: payload.clone(),
                    };
                    let from = nodes[i].id();
                    let reply = nodes[target.as_index()].handle_request(from, &payload, &mut rng);
                    nodes[i].handle_response(&pending, &reply, &mut rng);
                }
            }
        }
        nodes
    }

    #[test]
    #[should_panic(expected = "exchange length")]
    fn zero_exchange_len_panics() {
        FrameworkNode::new(n(0), (), SamplingPolicy::cyclon_like(), 5, 0);
    }

    #[test]
    fn policy_presets() {
        assert_eq!(
            SamplingPolicy::cyclon_like().view_selection,
            ViewSelection::Swapper
        );
        assert_eq!(
            SamplingPolicy::healer().view_selection,
            ViewSelection::Healer
        );
        assert_eq!(SamplingPolicy::blind().peer_selection, PeerSelection::Rand);
    }

    #[test]
    fn peer_selection_follows_policy() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut tail = node(0, SamplingPolicy::cyclon_like());
        tail.add_bootstrap_contact(Descriptor::with_age(n(1), 1, ()));
        tail.add_bootstrap_contact(Descriptor::with_age(n(2), 9, ()));
        assert_eq!(
            tail.select_peer(&mut rng),
            Some(n(2)),
            "tail picks the oldest"
        );

        let empty = node(3, SamplingPolicy::blind());
        assert_eq!(empty.select_peer(&mut rng), None);
    }

    #[test]
    fn push_propagation_returns_no_reply() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut push_node = node(
            0,
            SamplingPolicy {
                view_propagation: ViewPropagation::Push,
                ..SamplingPolicy::cyclon_like()
            },
        );
        let reply = push_node.handle_request(n(1), &[Descriptor::new(n(1), ())], &mut rng);
        assert!(reply.is_empty());
        assert!(
            push_node.view().contains(n(1)),
            "received entry still merged"
        );
    }

    #[test]
    fn all_policies_preserve_view_invariants_and_connect_the_overlay() {
        for policy in [
            SamplingPolicy::cyclon_like(),
            SamplingPolicy::healer(),
            SamplingPolicy::blind(),
        ] {
            let nodes = converge(policy, 30, 40);
            for node in &nodes {
                let ids = node.view().node_ids();
                let mut dedup = ids.clone();
                dedup.sort();
                dedup.dedup();
                assert_eq!(ids.len(), dedup.len(), "{policy:?}: duplicates");
                assert!(!node.view().contains(node.id()), "{policy:?}: self entry");
                assert!(node.view().len() <= node.view().capacity());
                assert!(
                    node.view().len() >= 3,
                    "{policy:?}: view of {} barely filled ({})",
                    node.id(),
                    node.view().len()
                );
            }
        }
    }

    #[test]
    fn healer_flushes_dead_descriptors_faster_than_blind() {
        // Age a dead descriptor artificially and check the healer drops it
        // during pruning while blind may keep it.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut healer = node(0, SamplingPolicy::healer());
        for i in 1..=6 {
            healer.add_bootstrap_contact(Descriptor::with_age(n(i), (i * 10) as u32, ()));
        }
        // Merging three new entries overflows the capacity-6 view by three;
        // the healer must evict the three oldest (40, 50, 60).
        healer.merge(
            &[
                Descriptor::new(n(7), ()),
                Descriptor::new(n(8), ()),
                Descriptor::new(n(9), ()),
            ],
            &[],
            &mut rng,
        );
        assert!(!healer.view().contains(n(6)));
        assert!(!healer.view().contains(n(5)));
        assert!(!healer.view().contains(n(4)));
        assert!(healer.view().contains(n(1)));
        assert!(healer.view().contains(n(9)));
    }

    #[test]
    fn exchange_failure_handling_depends_on_peer_selection() {
        let mut tail = node(0, SamplingPolicy::cyclon_like());
        tail.add_bootstrap_contact(Descriptor::new(n(1), ()));
        tail.exchange_failed(&PendingExchange {
            target: n(1),
            sent: Vec::new(),
        });
        assert!(!tail.view().contains(n(1)), "tail drops the dead peer");

        let mut rand = node(2, SamplingPolicy::blind());
        rand.add_bootstrap_contact(Descriptor::new(n(1), ()));
        rand.exchange_failed(&PendingExchange {
            target: n(1),
            sent: Vec::new(),
        });
        assert!(
            rand.view().contains(n(1)),
            "rand keeps it (will retry later)"
        );
    }

    #[test]
    fn implements_peer_sampling() {
        let nodes = converge(SamplingPolicy::cyclon_like(), 20, 30);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let sample = nodes[5].sample_peers(3, &[], &mut rng);
        assert_eq!(sample.len(), 3);
        assert_eq!(nodes[5].local_id(), n(5));
        assert!(!nodes[5].known_peers().is_empty());
    }
}
