//! The Vicinity proximity-based topology construction protocol
//! (Voulgaris & van Steen).
//!
//! Vicinity converges each node's view to the `vic` peers *closest* to it
//! according to a proximity metric. In RingCast the metric is the circular
//! order of arbitrarily chosen ring positions: a node's two closest peers —
//! the direct successor and the direct predecessor on the identifier ring —
//! become its d-links, and the remaining view entries (peers slightly
//! further along the ring in both directions) act as backups that let the
//! ring repair itself when nodes fail or churn.
//!
//! Vicinity is layered on top of Cyclon: besides exchanging views with
//! proximity-selected neighbours, each node also considers the entries of
//! its Cyclon view as candidates. The random layer keeps feeding fresh,
//! uniformly sampled peers into the proximity layer, which prevents the
//! greedy "keep the closest" rule from getting stuck in a local optimum and
//! lets a newly joined node find its ring position within a few cycles.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hybridcast_graph::NodeId;

use crate::descriptor::Descriptor;
use crate::proximity::{rank_by_ring_distance, ring_neighbors};
use crate::view::View;

/// Default Vicinity view length used throughout the paper's evaluation.
pub const DEFAULT_VIEW_LENGTH: usize = 20;

/// Default number of descriptors exchanged per Vicinity gossip.
pub const DEFAULT_GOSSIP_LENGTH: usize = 5;

/// State of one node running the Vicinity protocol over an `Ord` ring-key
/// space `K` (e.g. [`crate::proximity::RingPosition`] or
/// [`crate::proximity::DomainKey`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VicinityNode<K> {
    id: NodeId,
    key: K,
    view: View<K>,
    gossip_len: usize,
}

/// Pending state of a Vicinity exchange initiated by this node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingExchange {
    /// The peer the exchange request was sent to.
    pub target: NodeId,
}

impl<K: Ord + Clone> VicinityNode<K> {
    /// Creates a Vicinity node with an empty view.
    ///
    /// # Panics
    ///
    /// Panics if `view_len == 0` or `gossip_len == 0`.
    pub fn new(id: NodeId, key: K, view_len: usize, gossip_len: usize) -> Self {
        assert!(gossip_len > 0, "gossip length must be positive");
        VicinityNode {
            id,
            key,
            view: View::new(id, view_len),
            gossip_len: gossip_len.min(view_len),
        }
    }

    /// Creates a Vicinity node with the paper's default parameters
    /// (`vic = 20`, gossip length 5).
    pub fn with_defaults(id: NodeId, key: K) -> Self {
        Self::new(id, key, DEFAULT_VIEW_LENGTH, DEFAULT_GOSSIP_LENGTH)
    }

    /// The local node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The local node's ring key.
    pub fn key(&self) -> &K {
        &self.key
    }

    /// Read access to the current proximity view.
    pub fn view(&self) -> &View<K> {
        &self.view
    }

    /// Starts a new gossip cycle: ages every view entry by one.
    pub fn begin_cycle(&mut self) {
        self.view.increment_ages();
    }

    /// Initiates a Vicinity exchange.
    ///
    /// The gossip partner is the oldest entry of the proximity view; if the
    /// view is still empty the partner is drawn from `cyclon_candidates`
    /// (the random layer bootstraps the proximity layer). Returns `None`
    /// when no partner is known at all.
    ///
    /// The payload contains the node's own fresh descriptor plus up to
    /// `gossip_len - 1` view entries closest to the *target*, which is what
    /// lets proximity information travel towards the region of the ring
    /// where it is relevant.
    pub fn initiate_exchange<R: Rng + ?Sized>(
        &mut self,
        cyclon_candidates: &[Descriptor<K>],
        rng: &mut R,
    ) -> Option<(NodeId, Vec<Descriptor<K>>)> {
        let target = match self.view.oldest() {
            Some(t) => t,
            None => {
                let candidates: Vec<&Descriptor<K>> = cyclon_candidates
                    .iter()
                    .filter(|d| d.id != self.id)
                    .collect();
                if candidates.is_empty() {
                    return None;
                }
                candidates[rng.gen_range(0..candidates.len())].id
            }
        };
        let target_key = self
            .view
            .get(target)
            .map(|d| d.profile.clone())
            .or_else(|| {
                cyclon_candidates
                    .iter()
                    .find(|d| d.id == target)
                    .map(|d| d.profile.clone())
            })
            .unwrap_or_else(|| self.key.clone());

        let payload = self.payload_for(&target_key, target);
        Some((target, payload))
    }

    /// Handles an incoming exchange request from `from`, returning the reply
    /// payload (descriptors useful to `from`) and merging the received
    /// descriptors — plus the local Cyclon candidates — into the view.
    pub fn handle_exchange_request(
        &mut self,
        from: NodeId,
        from_key: Option<&K>,
        received: &[Descriptor<K>],
        cyclon_candidates: &[Descriptor<K>],
    ) -> Vec<Descriptor<K>> {
        // Work out the sender's key: prefer an explicit value, else the
        // sender's own descriptor inside the payload, else our own key.
        let sender_key = from_key
            .cloned()
            .or_else(|| {
                received
                    .iter()
                    .find(|d| d.id == from)
                    .map(|d| d.profile.clone())
            })
            .unwrap_or_else(|| self.key.clone());
        let reply = self.payload_for(&sender_key, from);
        self.merge(received, cyclon_candidates);
        reply
    }

    /// Handles the reply to an exchange this node initiated.
    pub fn handle_exchange_response(
        &mut self,
        _pending: &PendingExchange,
        received: &[Descriptor<K>],
        cyclon_candidates: &[Descriptor<K>],
    ) {
        self.merge(received, cyclon_candidates);
    }

    /// Records that an exchange towards an unreachable peer failed: the dead
    /// peer is dropped from the proximity view so the ring can re-close
    /// around it.
    pub fn exchange_failed(&mut self, pending: &PendingExchange) {
        self.view.remove(pending.target);
    }

    /// Merges arbitrary candidate descriptors (e.g. the local Cyclon view)
    /// into the proximity view without gossiping. This is the "use the
    /// random layer as a candidate source" half of the two-layer design.
    pub fn absorb_candidates(&mut self, candidates: &[Descriptor<K>]) {
        self.merge(&[], candidates);
    }

    /// The node's current ring neighbours `(predecessor, successor)`, i.e.
    /// its outgoing d-links. Either side is `None` while the view is empty.
    pub fn ring_neighbors(&self) -> (Option<NodeId>, Option<NodeId>) {
        let pairs: Vec<(K, NodeId)> = self
            .view
            .iter()
            .map(|d| (d.profile.clone(), d.id))
            .collect();
        ring_neighbors(&self.key, &pairs)
    }

    /// The `count` view entries closest to this node on the ring (closest
    /// first, alternating successor/predecessor sides).
    pub fn closest(&self, count: usize) -> Vec<NodeId> {
        let candidates: Vec<(K, NodeId, ())> = self
            .view
            .iter()
            .map(|d| (d.profile.clone(), d.id, ()))
            .collect();
        rank_by_ring_distance(&self.key, &candidates)
            .into_iter()
            .take(count)
            .map(|entry| entry.1)
            .collect()
    }

    /// Drops a specific peer from the view.
    pub fn forget_peer(&mut self, peer: NodeId) {
        self.view.remove(peer);
    }

    /// Builds a payload of descriptors for a peer with key `target_key`:
    /// this node's own fresh descriptor plus the view entries closest to the
    /// target (never the target itself).
    fn payload_for(&self, target_key: &K, target: NodeId) -> Vec<Descriptor<K>> {
        let candidates: Vec<(K, NodeId, u32)> = self
            .view
            .iter()
            .filter(|d| d.id != target)
            .map(|d| (d.profile.clone(), d.id, d.age))
            .collect();
        let mut payload: Vec<Descriptor<K>> = rank_by_ring_distance(target_key, &candidates)
            .into_iter()
            .take(self.gossip_len.saturating_sub(1))
            .map(|(key, id, age)| Descriptor::with_age(id, age, key))
            .collect();
        payload.push(Descriptor::new(self.id, self.key.clone()));
        payload
    }

    /// Merges received descriptors and random-layer candidates into the
    /// view, keeping the `capacity` entries closest to the local key.
    fn merge(&mut self, received: &[Descriptor<K>], cyclon_candidates: &[Descriptor<K>]) {
        let capacity = self.view.capacity();
        let mut pool: Vec<Descriptor<K>> = Vec::new();
        let add = |d: &Descriptor<K>, pool: &mut Vec<Descriptor<K>>| {
            if d.id == self.id {
                return;
            }
            match pool.iter_mut().find(|existing| existing.id == d.id) {
                Some(existing) => {
                    if d.age < existing.age {
                        *existing = d.clone();
                    }
                }
                None => pool.push(d.clone()),
            }
        };
        for d in self.view.iter() {
            add(d, &mut pool);
        }
        for d in received {
            add(d, &mut pool);
        }
        for d in cyclon_candidates {
            add(d, &mut pool);
        }

        let ranked: Vec<(K, NodeId, u32)> = {
            let candidates: Vec<(K, NodeId, u32)> = pool
                .iter()
                .map(|d| (d.profile.clone(), d.id, d.age))
                .collect();
            rank_by_ring_distance(&self.key, &candidates)
        };

        let selected: Vec<Descriptor<K>> = ranked
            .into_iter()
            .take(capacity)
            .map(|(key, id, age)| Descriptor::with_age(id, age, key))
            .collect();
        self.view.replace_with(selected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    /// A node whose ring key equals 100 * id, view length 4, gossip 3.
    fn vic(id: u64) -> VicinityNode<u64> {
        VicinityNode::new(n(id), id * 100, 4, 3)
    }

    fn desc(id: u64) -> Descriptor<u64> {
        Descriptor::new(n(id), id * 100)
    }

    #[test]
    fn new_node_has_no_ring_neighbors() {
        let node = vic(1);
        assert_eq!(node.ring_neighbors(), (None, None));
        assert!(node.closest(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "gossip length")]
    fn zero_gossip_len_panics() {
        let _ = VicinityNode::new(n(1), 0u64, 4, 0);
    }

    #[test]
    fn absorb_candidates_keeps_closest() {
        let mut node = vic(5); // key 500, capacity 4
        node.absorb_candidates(&[
            desc(1),
            desc(2),
            desc(3),
            desc(4),
            desc(6),
            desc(7),
            desc(8),
        ]);
        assert_eq!(node.view().len(), 4);
        // Closest on both sides of 500: 400, 600, 300, 700.
        let mut kept = node.view().node_ids();
        kept.sort();
        assert_eq!(kept, vec![n(3), n(4), n(6), n(7)]);
        assert_eq!(node.ring_neighbors(), (Some(n(4)), Some(n(6))));
    }

    #[test]
    fn closest_orders_by_alternating_sides() {
        let mut node = vic(5);
        node.absorb_candidates(&[desc(3), desc(4), desc(6), desc(7)]);
        assert_eq!(node.closest(2), vec![n(6), n(4)]);
        assert_eq!(node.closest(10), vec![n(6), n(4), n(7), n(3)]);
    }

    #[test]
    fn initiate_uses_cyclon_candidates_when_view_empty() {
        let mut node = vic(1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(node.initiate_exchange(&[], &mut rng).is_none());
        let (target, payload) = node
            .initiate_exchange(&[desc(7)], &mut rng)
            .expect("bootstrap from the random layer");
        assert_eq!(target, n(7));
        assert_eq!(payload.len(), 1, "only the own descriptor is known");
        assert_eq!(payload[0].id, n(1));
        assert_eq!(payload[0].age, 0);
    }

    #[test]
    fn exchange_round_trip_converges_both_views() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut a = vic(1);
        let mut b = vic(2);
        a.absorb_candidates(&[desc(3), desc(9)]);
        b.absorb_candidates(&[desc(4), desc(8)]);

        a.begin_cycle();
        b.begin_cycle();
        let (target, request) = a.initiate_exchange(&[desc(2)], &mut rng).unwrap();
        let pending = PendingExchange { target };
        let reply = b.handle_exchange_request(a.id(), Some(a.key()), &request, &[]);
        a.handle_exchange_response(&pending, &reply, &[]);

        assert!(b.view().contains(n(1)), "responder learned the initiator");
        assert!(a.view().contains(n(2)), "initiator learned the responder");
        for node in [&a, &b] {
            assert!(node.view().len() <= node.view().capacity());
            assert!(!node.view().contains(node.id()));
        }
    }

    #[test]
    fn reply_targets_the_senders_neighborhood() {
        let mut b = vic(5); // key 500
        b.absorb_candidates(&[desc(1), desc(4), desc(6), desc(9)]);
        // Sender has key 450; the most useful entries for it are 400 and 500-ish.
        let reply = b.handle_exchange_request(n(42), Some(&450u64), &[], &[]);
        assert!(reply.iter().any(|d| d.id == n(5)), "always includes itself");
        assert!(
            reply.iter().any(|d| d.id == n(4)),
            "includes the entry closest to the sender"
        );
        assert!(reply.iter().all(|d| d.id != n(42)));
    }

    #[test]
    fn exchange_failure_drops_dead_ring_neighbor() {
        let mut node = vic(5);
        node.absorb_candidates(&[desc(4), desc(6)]);
        assert_eq!(node.ring_neighbors(), (Some(n(4)), Some(n(6))));
        node.exchange_failed(&PendingExchange { target: n(6) });
        assert_eq!(node.ring_neighbors(), (Some(n(4)), Some(n(4))));
    }

    #[test]
    fn merge_prefers_younger_duplicate_descriptors() {
        let mut node = vic(5);
        node.absorb_candidates(&[Descriptor::with_age(n(4), 9, 400u64)]);
        node.absorb_candidates(&[Descriptor::with_age(n(4), 2, 400u64)]);
        assert_eq!(node.view().get(n(4)).unwrap().age, 2);
    }

    #[test]
    fn forget_peer_removes_entry() {
        let mut node = vic(5);
        node.absorb_candidates(&[desc(4), desc(6)]);
        node.forget_peer(n(4));
        assert!(!node.view().contains(n(4)));
    }

    #[test]
    fn works_with_domain_keys() {
        use crate::proximity::DomainKey;
        let key = |d: &str, nonce: u64| DomainKey::from_domain(d, nonce);
        let mut node = VicinityNode::new(n(0), key("inf.ethz.ch", 5), 2, 2);
        node.absorb_candidates(&[
            Descriptor::new(n(1), key("few.vu.nl", 1)),
            Descriptor::new(n(2), key("phys.ethz.ch", 2)),
            Descriptor::new(n(3), key("cs.uchicago.edu", 3)),
        ]);
        // The same-country peer must be kept in the 2-entry view.
        assert!(node.view().contains(n(2)));
    }
}
