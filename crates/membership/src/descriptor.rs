//! Node descriptors exchanged by the membership protocols.

use serde::{Deserialize, Serialize};

use hybridcast_graph::NodeId;

/// An entry of a partial view: a pointer to another node, the gossip age of
/// that pointer, and the node's application profile.
///
/// * The **age** counts gossip cycles since the descriptor was created by
///   the node it points to. Cyclon uses it to prefer exchanging with the
///   oldest neighbour (which bounds how stale a link may become and flushes
///   dead links out of the overlay).
/// * The **profile** is the payload the proximity layer ranks on. For the
///   RingCast ring it is the node's random ring position
///   ([`crate::proximity::RingPosition`]); pure Cyclon deployments use `()`.
///
/// # Example
///
/// ```
/// use hybridcast_membership::Descriptor;
/// use hybridcast_graph::NodeId;
///
/// let mut d = Descriptor::new(NodeId::new(3), 0xAABBu64);
/// assert_eq!(d.age, 0);
/// d.increment_age();
/// assert_eq!(d.age, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Descriptor<P> {
    /// The node this descriptor points to.
    pub id: NodeId,
    /// Number of gossip cycles since the pointed-to node created this
    /// descriptor about itself.
    pub age: u32,
    /// Application profile of the pointed-to node (ring position, domain
    /// key, ...).
    pub profile: P,
}

impl<P> Descriptor<P> {
    /// Creates a fresh descriptor (age 0) for `id` with the given profile.
    pub fn new(id: NodeId, profile: P) -> Self {
        Descriptor {
            id,
            age: 0,
            profile,
        }
    }

    /// Creates a descriptor with an explicit age.
    pub fn with_age(id: NodeId, age: u32, profile: P) -> Self {
        Descriptor { id, age, profile }
    }

    /// Increments the age by one cycle (saturating).
    pub fn increment_age(&mut self) {
        self.age = self.age.saturating_add(1);
    }

    /// Returns a copy of this descriptor with age reset to 0, as created by
    /// the node itself at the start of an exchange.
    pub fn refreshed(&self) -> Self
    where
        P: Clone,
    {
        Descriptor {
            id: self.id,
            age: 0,
            profile: self.profile.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_descriptor_has_zero_age() {
        let d = Descriptor::new(NodeId::new(1), ());
        assert_eq!(d.age, 0);
        assert_eq!(d.id, NodeId::new(1));
    }

    #[test]
    fn age_increments_and_saturates() {
        let mut d = Descriptor::with_age(NodeId::new(1), u32::MAX - 1, ());
        d.increment_age();
        assert_eq!(d.age, u32::MAX);
        d.increment_age();
        assert_eq!(d.age, u32::MAX, "age saturates instead of wrapping");
    }

    #[test]
    fn refreshed_resets_age_and_keeps_profile() {
        let d = Descriptor::with_age(NodeId::new(9), 17, 42u64);
        let fresh = d.refreshed();
        assert_eq!(fresh.age, 0);
        assert_eq!(fresh.id, d.id);
        assert_eq!(fresh.profile, 42);
    }
}
