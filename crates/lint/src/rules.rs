//! The rule checkers. Each rule takes a repo-relative path, the lexed
//! token stream and the allowlist, and appends [`Violation`]s.

use std::fmt;

use crate::config::Config;
use crate::lexer::{in_cfg_test_mask, Token};

/// One diagnostic: where, which rule, what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id (`D1`..`D5`, `A1`).
    pub rule: &'static str,
    /// Human-readable explanation with the fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// One candidate finding before the allowlist is consulted.
struct Finding {
    rule: &'static str,
    /// What matched — the identifier or lint path an allowlist entry can
    /// name to cover it.
    detail: String,
    line: usize,
    message: String,
}

/// Records a violation unless `lint.toml` has a matching entry; either way
/// marks the consulted entry as used.
fn push_unless_allowed(
    out: &mut Vec<Violation>,
    used: &mut [bool],
    config: &Config,
    path: &str,
    finding: Finding,
) {
    if let Some(i) = config.find_allow(finding.rule, path, &finding.detail) {
        used[i] = true;
    } else {
        out.push(Violation {
            path: path.to_string(),
            line: finding.line,
            rule: finding.rule,
            message: finding.message,
        });
    }
}

/// The crates whose sources rule D1 governs: everything that must be
/// seed-deterministic. `net` legitimately uses hash collections (it talks
/// to a real network and never feeds iteration order into a seeded run).
pub fn d1_applies(path: &str) -> bool {
    [
        "crates/core/",
        "crates/sim/",
        "crates/membership/",
        "crates/graph/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

/// **D1** `no-hash-collections`: `HashMap` / `HashSet` break
/// seed-determinism (RandomState iteration order). Applies everywhere in
/// the deterministic crates, including tests — test-only uses get an
/// explicit allowlist entry instead of a blanket exemption.
pub fn check_hash_collections(
    path: &str,
    tokens: &[Token],
    config: &Config,
    used: &mut [bool],
    out: &mut Vec<Violation>,
) {
    if !d1_applies(path) {
        return;
    }
    for t in tokens {
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            let finding = Finding {
                rule: "D1",
                detail: t.text.clone(),
                line: t.line,
                message: format!(
                    "{} has seed-dependent iteration order; use BTreeMap/BTreeSet \
                     or an arena layout (see docs/DETERMINISM.md)",
                    t.text
                ),
            };
            push_unless_allowed(out, used, config, path, finding);
        }
    }
}

/// **D2** `no-ambient-entropy`: `Instant::now`, `SystemTime`, `thread_rng`
/// and `from_entropy` make runs unreproducible. Applies to every
/// first-party file; wall-clock paths (`net` runtime, bench binaries) carry
/// allowlist entries.
pub fn check_ambient_entropy(
    path: &str,
    tokens: &[Token],
    config: &Config,
    used: &mut [bool],
    out: &mut Vec<Violation>,
) {
    for (i, t) in tokens.iter().enumerate() {
        let detail = if t.is_ident("thread_rng") || t.is_ident("from_entropy") {
            Some(t.text.clone())
        } else if t.is_ident("SystemTime") {
            Some("SystemTime".to_string())
        } else if t.is_ident("Instant")
            && tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|c| c.is_ident("now"))
        {
            Some("Instant::now".to_string())
        } else {
            None
        };
        if let Some(detail) = detail {
            let message = format!(
                "{detail} reads ambient time/entropy and breaks reproducibility; \
                 thread a seeded ChaCha8Rng / simulated clock instead"
            );
            let finding = Finding {
                rule: "D2",
                detail,
                line: t.line,
                message,
            };
            push_unless_allowed(out, used, config, path, finding);
        }
    }
}

/// **D3** `no-raw-index-cast`: raw `as u32` / `as usize` in the dense
/// hot-path files (the `[hot-paths]` list in lint.toml). Test modules are
/// exempt; shipping code must use `hybridcast_graph::cast`.
pub fn check_raw_index_casts(
    path: &str,
    tokens: &[Token],
    config: &Config,
    used: &mut [bool],
    out: &mut Vec<Violation>,
) {
    if !config.hot_paths.iter().any(|p| p == path) {
        return;
    }
    let test_mask = in_cfg_test_mask(tokens);
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("as") || test_mask[i] {
            continue;
        }
        let Some(next) = tokens.get(i + 1) else {
            continue;
        };
        if next.is_ident("u32") || next.is_ident("usize") {
            let finding = Finding {
                rule: "D3",
                detail: format!("as {}", next.text),
                line: t.line,
                message: format!(
                    "raw `as {}` can silently truncate a node index; use \
                     hybridcast_graph::cast::{{idx, to_u32, checked_u32}}",
                    next.text
                ),
            };
            push_unless_allowed(out, used, config, path, finding);
        }
    }
}

/// **D4** `forbid-unsafe`: a first-party crate root must carry
/// `#![forbid(unsafe_code)]`. Called once per crate-root file.
pub fn check_forbid_unsafe(
    path: &str,
    tokens: &[Token],
    config: &Config,
    used: &mut [bool],
    out: &mut Vec<Violation>,
) {
    let has_forbid = tokens.windows(5).any(|w| {
        w[0].is_ident("forbid")
            && w[1].is_punct('(')
            && w[2].is_ident("unsafe_code")
            && w[3].is_punct(')')
            && w[4].is_punct(']')
    });
    if !has_forbid {
        let finding = Finding {
            rule: "D4",
            detail: "forbid(unsafe_code)".to_string(),
            line: 1,
            message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
        };
        push_unless_allowed(out, used, config, path, finding);
    }
}

/// **D5** `no-dyn-probe`: `dyn Probe` in the `[hot-paths]` files. The probe
/// layer is zero-cost only because the engines monomorphize over
/// `P: Probe` and `NullProbe` inlines to nothing; a trait object in a hot
/// path reintroduces a virtual call per event. Binaries and non-hot files
/// may box probes freely — the dispatch cost there is one closure, not one
/// per message. Test modules are exempt, like D3.
pub fn check_dyn_probe(
    path: &str,
    tokens: &[Token],
    config: &Config,
    used: &mut [bool],
    out: &mut Vec<Violation>,
) {
    if !config.hot_paths.iter().any(|p| p == path) {
        return;
    }
    let test_mask = in_cfg_test_mask(tokens);
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("dyn") || test_mask[i] {
            continue;
        }
        // The type after `dyn` is a (possibly qualified) path: idents
        // separated by `::`. Flag if its last segment is `Probe`.
        let mut last_segment: Option<&Token> = None;
        let mut k = i + 1;
        while let Some(tok) = tokens.get(k) {
            if tok.is_punct(':') {
                k += 1;
            } else if tok
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
            {
                last_segment = Some(tok);
                k += 1;
            } else {
                break;
            }
        }
        if last_segment.is_some_and(|s| s.is_ident("Probe")) {
            let finding = Finding {
                rule: "D5",
                detail: "dyn Probe".to_string(),
                line: t.line,
                message: "`dyn Probe` in a hot-path file adds a virtual call per event; \
                          keep the engine generic over `P: Probe` so NullProbe erases \
                          (box the probe in the binary instead)"
                    .to_string(),
            };
            push_unless_allowed(out, used, config, path, finding);
        }
    }
}

/// **A1** `allow-attr`: every `#[allow(lint::path)]` in first-party code
/// needs a justified lint.toml entry — exceptions are reviewed in one
/// place, not scattered.
pub fn check_allow_attrs(
    path: &str,
    tokens: &[Token],
    config: &Config,
    used: &mut [bool],
    out: &mut Vec<Violation>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_punct('#') && tokens.get(i + 1).is_some_and(|b| b.is_punct('['))) {
            continue;
        }
        let mut j = i + 2;
        if tokens.get(j).is_some_and(|b| b.is_punct('!')) {
            // `#![allow(...)]` at crate level counts too.
            j += 1;
        }
        if !tokens.get(j).is_some_and(|t| t.is_ident("allow")) {
            continue;
        }
        // Collect the lint path up to the closing `)`.
        let mut lint = String::new();
        let mut k = j + 2;
        while let Some(tok) = tokens.get(k) {
            if tok.is_punct(')') {
                break;
            }
            lint.push_str(&tok.text);
            k += 1;
        }
        let message = format!(
            "#[allow({lint})] has no lint.toml entry; add one with a one-line \
             justification (rule \"A1\", lint \"{lint}\") or remove the attribute"
        );
        let finding = Finding {
            rule: "A1",
            detail: lint,
            line: t.line,
            message,
        };
        push_unless_allowed(out, used, config, path, finding);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_all(path: &str, src: &str, config: &Config) -> Vec<Violation> {
        let tokens = lex(src);
        let mut used = vec![false; config.allows.len()];
        let mut out = Vec::new();
        check_hash_collections(path, &tokens, config, &mut used, &mut out);
        check_ambient_entropy(path, &tokens, config, &mut used, &mut out);
        check_raw_index_casts(path, &tokens, config, &mut used, &mut out);
        check_dyn_probe(path, &tokens, config, &mut used, &mut out);
        check_allow_attrs(path, &tokens, config, &mut used, &mut out);
        out
    }

    fn hot_config() -> Config {
        Config::parse("[hot-paths]\nfiles = [\n\"crates/core/src/overlay.rs\",\n]\n").unwrap()
    }

    // Seeded violations for every rule: the acceptance criterion that the
    // linter "fails with file:line diagnostics on a seeded violation of
    // each rule".

    #[test]
    fn d1_flags_seeded_hashmap_with_file_and_line() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }\n";
        let v = run_all("crates/core/src/x.rs", src, &Config::default());
        assert!(v.iter().any(|v| v.rule == "D1" && v.line == 1));
        assert!(v.iter().any(|v| v.rule == "D1" && v.line == 2));
        assert_eq!(v[0].path, "crates/core/src/x.rs");
    }

    #[test]
    fn d1_ignores_non_deterministic_crates_and_strings() {
        let src = "use std::collections::HashMap;";
        assert!(run_all("crates/net/src/x.rs", src, &Config::default()).is_empty());
        let quoted = "fn f() { let s = \"HashMap\"; }";
        assert!(run_all("crates/core/src/x.rs", quoted, &Config::default()).is_empty());
    }

    #[test]
    fn d2_flags_each_entropy_source() {
        let src = "fn f() {\nlet t = Instant::now();\nlet s = SystemTime::now();\nlet r = thread_rng();\nlet g = ChaCha8Rng::from_entropy();\n}";
        let v = run_all("crates/core/src/x.rs", src, &Config::default());
        let d2: Vec<_> = v.iter().filter(|v| v.rule == "D2").collect();
        assert_eq!(d2.len(), 4, "{d2:?}");
        assert_eq!(d2[0].line, 2);
    }

    #[test]
    fn d2_does_not_flag_instant_without_now() {
        let src = "use std::time::Instant;\nfn f(i: Instant) {}";
        assert!(run_all("crates/net/src/y.rs", src, &Config::default()).is_empty());
    }

    #[test]
    fn d3_flags_raw_casts_only_in_hot_paths_and_outside_tests() {
        let src = "fn f(i: u32) -> usize { i as usize }\n#[cfg(test)]\nmod tests { fn g(i: u32) -> usize { i as usize } }";
        let v = run_all("crates/core/src/overlay.rs", src, &hot_config());
        let d3: Vec<_> = v.iter().filter(|v| v.rule == "D3").collect();
        assert_eq!(d3.len(), 1, "test module must be exempt: {d3:?}");
        assert_eq!(d3[0].line, 1);
        // Same source in a non-hot-path file: clean.
        assert!(run_all("crates/core/src/other.rs", src, &hot_config()).is_empty());
    }

    #[test]
    fn d4_flags_missing_forbid() {
        let tokens = lex("//! docs\npub fn f() {}\n");
        let config = Config::default();
        let mut used = Vec::new();
        let mut out = Vec::new();
        check_forbid_unsafe("crates/x/src/lib.rs", &tokens, &config, &mut used, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "D4");

        let good = lex("#![forbid(unsafe_code)]\npub fn f() {}\n");
        let mut out2 = Vec::new();
        check_forbid_unsafe("crates/x/src/lib.rs", &good, &config, &mut used, &mut out2);
        assert!(out2.is_empty());
    }

    #[test]
    fn d5_flags_dyn_probe_only_in_hot_paths_and_outside_tests() {
        let src = "fn f(p: &mut dyn Probe) {}\n\
                   fn g(p: Box<dyn hybridcast_obs::Probe>) {}\n\
                   #[cfg(test)]\n\
                   mod tests { fn h(p: &mut dyn Probe) {} }";
        let v = run_all("crates/core/src/overlay.rs", src, &hot_config());
        let d5: Vec<_> = v.iter().filter(|v| v.rule == "D5").collect();
        assert_eq!(d5.len(), 2, "test module must be exempt: {d5:?}");
        assert_eq!(d5[0].line, 1);
        assert_eq!(d5[1].line, 2, "qualified `dyn hybridcast_obs::Probe` too");
        // Same source outside the hot-path list: clean — binaries may box.
        assert!(run_all("crates/bench/src/probing.rs", src, &hot_config()).is_empty());
    }

    #[test]
    fn d5_ignores_other_trait_objects() {
        let src = "fn f(w: &mut dyn std::io::Write, e: Box<dyn Error>) {}";
        assert!(run_all("crates/core/src/overlay.rs", src, &hot_config()).is_empty());
    }

    #[test]
    fn a1_flags_unlisted_allow_attributes() {
        let src = "#[allow(clippy::too_many_arguments)]\nfn f() {}";
        let v = run_all("crates/sim/src/x.rs", src, &Config::default());
        assert!(v
            .iter()
            .any(|v| v.rule == "A1" && v.message.contains("clippy::too_many_arguments")));
    }

    #[test]
    fn allowlist_entries_suppress_and_are_marked_used() {
        let toml = concat!(
            "[[allow]]\n",
            "rule = \"D1\"\n",
            "path = \"crates/core/src/x.rs\"\n",
            "ident = \"HashMap\"\n",
            "reason = \"seeded test\"\n",
        );
        let config = Config::parse(toml).unwrap();
        let tokens = lex("fn f() { let m: HashMap<u32, u32>; }");
        let mut used = vec![false; 1];
        let mut out = Vec::new();
        check_hash_collections(
            "crates/core/src/x.rs",
            &tokens,
            &config,
            &mut used,
            &mut out,
        );
        assert!(out.is_empty());
        assert!(used[0], "the consulted entry must be marked used");
    }
}
