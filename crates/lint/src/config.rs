//! The `lint.toml` allowlist: every exception to a rule, explicit and
//! justified.
//!
//! The parser is a deliberately small hand-rolled reader for the subset of
//! TOML the file uses (the workspace vendors all dependencies, so pulling a
//! real TOML crate is not an option): `[[allow]]` array-of-table headers,
//! `[hot-paths]` table headers, `key = "string"` pairs and multi-line
//! string arrays. Unknown keys are errors — a typo in an exception must not
//! silently disable it.

use std::fmt;

/// One allowlist entry: rule + path (+ optional detail) + justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the exception applies to (`D1`..`D5`, `A1`).
    pub rule: String,
    /// Repo-relative path (forward slashes) the exception covers.
    pub path: String,
    /// Optional detail refinement: the banned identifier (D1/D2) or the
    /// allowed lint path (A1). `None` covers the whole file for the rule.
    pub detail: Option<String>,
    /// One-line justification. Required and non-empty.
    pub reason: String,
    /// Line in lint.toml, for diagnostics.
    pub line: usize,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Explicit exceptions.
    pub allows: Vec<AllowEntry>,
    /// Files rules D3 (no raw index casts) and D5 (no `dyn Probe`) govern.
    pub hot_paths: Vec<String>,
}

/// A parse failure with its lint.toml line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

enum Section {
    None,
    Allow,
    HotPaths,
}

impl Config {
    /// Parses the contents of `lint.toml`.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line: unknown section or key, missing
    /// quotes, an `[[allow]]` entry without `rule`/`path`/`reason`, or an
    /// empty `reason`.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        let mut section = Section::None;
        let mut in_files_array = false;

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }

            if in_files_array {
                if line == "]" {
                    in_files_array = false;
                } else {
                    let item = line.trim_end_matches(',').trim();
                    config.hot_paths.push(unquote(item, lineno)?);
                }
                continue;
            }

            if line == "[[allow]]" {
                section = Section::Allow;
                config.allows.push(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    detail: None,
                    reason: String::new(),
                    line: lineno,
                });
                continue;
            }
            if line == "[hot-paths]" {
                section = Section::HotPaths;
                continue;
            }
            if line.starts_with('[') {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unknown section {line}"),
                });
            }

            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, got {line}"),
                });
            };
            let key = key.trim();
            let value = value.trim();

            match section {
                Section::Allow => {
                    let entry = config
                        .allows
                        .last_mut()
                        .expect("section Allow implies an open entry");
                    match key {
                        "rule" => entry.rule = unquote(value, lineno)?,
                        "path" => entry.path = unquote(value, lineno)?,
                        "ident" | "lint" => entry.detail = Some(unquote(value, lineno)?),
                        "reason" => entry.reason = unquote(value, lineno)?,
                        other => {
                            return Err(ConfigError {
                                line: lineno,
                                message: format!("unknown [[allow]] key `{other}`"),
                            })
                        }
                    }
                }
                Section::HotPaths => match key {
                    "files" => {
                        if value == "[" {
                            in_files_array = true;
                        } else {
                            return Err(ConfigError {
                                line: lineno,
                                message: "expected `files = [` opening a multi-line array".into(),
                            });
                        }
                    }
                    other => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown [hot-paths] key `{other}`"),
                        })
                    }
                },
                Section::None => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("key `{key}` outside any section"),
                    })
                }
            }
        }

        for entry in &config.allows {
            if entry.rule.is_empty() || entry.path.is_empty() {
                return Err(ConfigError {
                    line: entry.line,
                    message: "[[allow]] entry needs both `rule` and `path`".into(),
                });
            }
            if entry.reason.trim().is_empty() {
                return Err(ConfigError {
                    line: entry.line,
                    message: format!(
                        "[[allow]] entry for {} ({}) has no `reason` — every exception \
                         must be justified",
                        entry.path, entry.rule
                    ),
                });
            }
        }
        Ok(config)
    }

    /// Index of the first allowlist entry covering `rule` + `path` (+
    /// `detail`), if any. An entry with no detail covers every detail.
    pub fn find_allow(&self, rule: &str, path: &str, detail: &str) -> Option<usize> {
        self.allows.iter().position(|e| {
            e.rule == rule && e.path == path && e.detail.as_deref().map_or(true, |d| d == detail)
        })
    }
}

fn strip_comment(line: &str) -> &str {
    // Good enough for this file: no `#` ever appears inside its strings.
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn unquote(value: &str, line: usize) -> Result<String, ConfigError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ConfigError {
            line,
            message: format!("expected a double-quoted string, got `{v}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# exceptions
[[allow]]
rule = "D1"
path = "crates/graph/src/node.rs"
ident = "HashSet"
reason = "test exercises the Hash impl"

[[allow]]
rule = "D2"
path = "crates/net/src/node.rs"
reason = "wall-clock timeouts"

[hot-paths]
files = [
    "crates/core/src/overlay.rs",
    "crates/sim/src/dense.rs",
]
"#;

    #[test]
    fn parses_entries_and_hot_paths() {
        let c = Config::parse(SAMPLE).unwrap();
        assert_eq!(c.allows.len(), 2);
        assert_eq!(c.allows[0].detail.as_deref(), Some("HashSet"));
        assert_eq!(c.hot_paths.len(), 2);
    }

    #[test]
    fn matching_honours_detail_refinement() {
        let c = Config::parse(SAMPLE).unwrap();
        assert!(c
            .find_allow("D1", "crates/graph/src/node.rs", "HashSet")
            .is_some());
        assert!(c
            .find_allow("D1", "crates/graph/src/node.rs", "HashMap")
            .is_none());
        // No-detail entry covers any detail.
        assert!(c
            .find_allow("D2", "crates/net/src/node.rs", "Instant::now")
            .is_some());
        assert!(c.find_allow("D2", "crates/net/src/other.rs", "x").is_none());
    }

    #[test]
    fn missing_reason_is_rejected() {
        let bad = "[[allow]]\nrule = \"D1\"\npath = \"x.rs\"\n";
        let err = Config::parse(bad).unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let bad = "[[allow]]\nrule = \"D1\"\npath = \"x.rs\"\nreson = \"typo\"\n";
        assert!(Config::parse(bad).is_err());
    }
}
