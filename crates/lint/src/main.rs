//! The `hybridcast-lint` binary: `cargo run -p lint --release`.
//!
//! Scans the workspace sources against rules D1–D5 + A1 (see the crate
//! docs), verifies `docs/UNSAFE_INVENTORY.md` matches `vendor/`, and exits
//! non-zero with `file:line: rule: message` diagnostics on any violation.
//! `--write-inventory` regenerates the inventory file instead of verifying
//! it.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use hybridcast_lint::{config::Config, inventory, scan};

fn main() -> ExitCode {
    match run() {
        Ok(0) => {
            println!("hybridcast-lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(n) => {
            eprintln!("hybridcast-lint: {n} violation(s)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("hybridcast-lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<usize, String> {
    let write_inventory = std::env::args().any(|a| a == "--write-inventory");

    // Under `cargo run` the manifest dir is crates/lint; the workspace root
    // is two levels up. Fall back to the current directory otherwise.
    let root = match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir)
            .ancestors()
            .nth(2)
            .expect("crates/lint has a workspace root two levels up")
            .to_path_buf(),
        None => std::env::current_dir().map_err(|e| e.to_string())?,
    };

    let config_path = root.join("lint.toml");
    let config_text = fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config = Config::parse(&config_text).map_err(|e| e.to_string())?;

    let mut violations = scan::scan_workspace(&root, &config)?;

    // Rule D4, vendored half: the unsafe inventory.
    let crates = inventory::collect(&root)?;
    let rendered = inventory::render(&crates);
    let inventory_path = root.join("docs/UNSAFE_INVENTORY.md");
    if write_inventory {
        fs::write(&inventory_path, &rendered)
            .map_err(|e| format!("cannot write {}: {e}", inventory_path.display()))?;
        println!("wrote {}", inventory_path.display());
    } else {
        let on_disk = fs::read_to_string(&inventory_path).unwrap_or_default();
        if on_disk != rendered {
            violations.push(hybridcast_lint::Violation {
                path: "docs/UNSAFE_INVENTORY.md".into(),
                line: 1,
                rule: "D4",
                message: "inventory is out of date with vendor/ sources; regenerate with \
                          `cargo run -p lint --release -- --write-inventory`"
                    .into(),
            });
        }
    }

    for v in &violations {
        eprintln!("{v}");
    }
    Ok(violations.len())
}
