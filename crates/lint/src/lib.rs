//! `hybridcast-lint`: the workspace's static-analysis pass.
//!
//! The repo's two load-bearing invariants — seed-determinism (every dense
//! engine bit-identical to its BTree oracle) and zero-allocation warm hot
//! paths — are enforced dynamically by differential property tests and the
//! counting-allocator suite. This crate is the *static* half of the gate: a
//! token-level scanner (the same hand-rolled lexing approach as the
//! vendored `serde_derive` shim, applied to raw source text) that catches
//! the common ways those invariants silently rot:
//!
//! * **D1** `no-hash-collections` — `HashMap`/`HashSet` in the
//!   deterministic crates (`core`, `sim`, `membership`, `graph`): iteration
//!   order depends on `RandomState`, which breaks seed-determinism.
//! * **D2** `no-ambient-entropy` — `Instant::now`, `SystemTime`,
//!   `thread_rng`, `from_entropy` anywhere outside the explicit allowlist
//!   (wall-clock paths in `net`, bench binaries): ambient time and entropy
//!   make runs unreproducible.
//! * **D3** `no-raw-index-cast` — raw `as u32` / `as usize` in the dense
//!   hot-path files listed in `lint.toml`: silent truncation; use
//!   `hybridcast_graph::cast::{idx, to_u32, checked_u32}` instead.
//! * **D4** `forbid-unsafe` — every first-party crate root carries
//!   `#![forbid(unsafe_code)]`, and the vendored shims are inventoried into
//!   `docs/UNSAFE_INVENTORY.md` (regenerate with `--write-inventory`).
//! * **D5** `no-dyn-probe` — `dyn Probe` in the hot-path files: the probe
//!   layer is zero-cost only while the engines stay generic over
//!   `P: Probe`; a trait object there costs a virtual call per event.
//!   Binaries box probes freely.
//! * **A1** `allow-attr` — every `#[allow(...)]` in first-party code needs
//!   a justified `lint.toml` entry; unused allowlist entries are errors, so
//!   stale exceptions cannot linger.
//!
//! Exceptions live in the checked-in `lint.toml` at the repo root — every
//! one is explicit, justified and diffable. The binary exits non-zero on
//! any violation, printing `file:line: rule: message` diagnostics.

#![forbid(unsafe_code)]

pub mod config;
pub mod inventory;
pub mod lexer;
pub mod rules;
pub mod scan;

pub use config::Config;
pub use rules::Violation;
