//! A minimal Rust lexer over raw source text.
//!
//! The vendored `serde_derive` shim parses derive input by walking a flat
//! cursor of tokens; this module applies the same approach to whole source
//! files, which the `proc_macro` API cannot see. The lexer understands just
//! enough of Rust's lexical grammar for sound rule checking: comments (line
//! and nested block), string / raw-string / byte-string / char literals and
//! lifetimes never produce identifier tokens, so `"thread_rng"` inside a
//! test fixture string or a doc comment can never trip a rule.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `as`, `unsafe`, ...).
    Ident,
    /// A string, raw-string, byte-string, char or numeric literal.
    Literal,
    /// Any single punctuation character (`#`, `[`, `:`, ...).
    Punct,
}

/// One lexed token: its kind, text and 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Exact source text (a single char for punctuation).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// `true` for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// `true` for a punctuation token with exactly this char.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

/// Lexes `source` into a flat token stream, discarding comments and
/// whitespace. Malformed input (unterminated literals) never panics: the
/// remainder of the file is consumed as one literal, which only ever makes
/// the scan more conservative.
pub fn lex(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::from("\"...\""),
                    line: start_line,
                });
            }
            'r' | 'b' if starts_raw_string(&chars, i) => {
                let start_line = line;
                // Skip the `r`/`br` prefix, count the `#`s, find the quote.
                while i < chars.len() && chars[i] != '#' && chars[i] != '"' {
                    i += 1;
                }
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                'raw: while i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                    } else if chars[i] == '"' {
                        let mut j = i + 1;
                        let mut seen = 0usize;
                        while seen < hashes && chars.get(j) == Some(&'#') {
                            seen += 1;
                            j += 1;
                        }
                        if seen == hashes {
                            i = j;
                            break 'raw;
                        }
                    }
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::from("r\"...\""),
                    line: start_line,
                });
            }
            'b' if chars.get(i + 1) == Some(&'"') => {
                // Byte string: delegate to the plain string arm.
                i += 1;
                continue;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = chars.get(i + 1).copied().unwrap_or(' ');
                let is_lifetime = (next.is_alphabetic() || next == '_')
                    && chars.get(i + 2).copied() != Some('\'');
                if is_lifetime {
                    i += 1; // the identifier after it lexes as Ident
                    tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: String::from("'"),
                        line,
                    });
                } else {
                    let start_line = line;
                    i += 1;
                    while i < chars.len() {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::from("'.'"),
                        line: start_line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    // `0..len` must lex as number, range, number.
                    if chars[i] == '.' && chars.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            other => {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: other.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    tokens
}

/// `true` if position `i` starts a raw (possibly byte) string: `r"`,
/// `r#"`, `br"`, `br#"`.
fn starts_raw_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Marks which tokens fall inside `#[cfg(test)]` items, so rules that only
/// govern shipping code (D3) can skip test modules.
///
/// The supported shapes are the ones that occur in this workspace: a
/// `#[cfg(test)]` attribute followed (possibly after more attributes) by a
/// braced item (`mod tests { ... }`) — skipped to the matching close brace —
/// or by a brace-less item (`use ...;`) — skipped to the `;`.
pub fn in_cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Find the end of the following item.
            let mut j = i;
            // Step over this and any further attributes.
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attr(tokens, j);
            }
            let mut depth = 0usize;
            let mut entered = false;
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    depth += 1;
                    entered = true;
                } else if tokens[j].is_punct('}') {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        break;
                    }
                } else if tokens[j].is_punct(';') && !entered {
                    break;
                }
                j += 1;
            }
            for m in mask.iter_mut().take((j + 1).min(tokens.len())).skip(i) {
                *m = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// `true` if tokens starting at `i` spell `#[cfg(test)]` (or a
/// `#[cfg(...)]` whose argument list contains the ident `test`, covering
/// `#[cfg(any(test, feature = "x"))]`).
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    if !(tokens.len() > i + 4
        && tokens[i].is_punct('#')
        && tokens[i + 1].is_punct('[')
        && tokens[i + 2].is_ident("cfg")
        && tokens[i + 3].is_punct('('))
    {
        return false;
    }
    let end = skip_attr(tokens, i);
    tokens[i + 4..end].iter().any(|t| t.is_ident("test"))
}

/// Returns the index just past the attribute starting at `i` (which must be
/// a `#`), balancing the outer `[` `]` pair.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if j < tokens.len() && tokens[j].is_punct('!') {
        j += 1;
    }
    if j >= tokens.len() || !tokens[j].is_punct('[') {
        return i + 1;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // thread_rng in a comment
            /* HashMap in /* a nested */ block */
            let s = "SystemTime::now()";
            let r = r#"Instant::now"#;
            let c = 'H';
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real".to_string()));
        assert!(!ids.iter().any(|i| i.contains("thread_rng")
            || i.contains("HashMap")
            || i.contains("SystemTime")
            || i.contains("Instant")));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = 2;\n";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.iter().filter(|i| *i == "a").count() >= 3);
    }

    #[test]
    fn numeric_ranges_split_correctly() {
        let toks = lex("for i in 0..len {}");
        assert!(toks.iter().any(|t| t.is_ident("len")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "0"));
    }

    #[test]
    fn cfg_test_mask_covers_the_module_body() {
        let src = r#"
            fn hot() { let x = y as usize; }
            #[cfg(test)]
            mod tests {
                fn t() { let x = y as usize; }
            }
            fn hot2() {}
        "#;
        let toks = lex(src);
        let mask = in_cfg_test_mask(&toks);
        let pos_of = |name: &str| toks.iter().position(|t| t.is_ident(name)).unwrap();
        assert!(!mask[pos_of("hot")]);
        assert!(mask[pos_of("t")]);
        assert!(!mask[pos_of("hot2")]);
    }

    #[test]
    fn cfg_test_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}";
        let toks = lex(src);
        let mask = in_cfg_test_mask(&toks);
        let live = toks.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!mask[live]);
        let bar = toks.iter().position(|t| t.is_ident("bar")).unwrap();
        assert!(mask[bar]);
    }
}
