//! File discovery and rule orchestration over the workspace.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::lexer::lex;
use crate::rules::{
    check_allow_attrs, check_ambient_entropy, check_dyn_probe, check_forbid_unsafe,
    check_hash_collections, check_raw_index_casts, Violation,
};

/// Recursively collects every `.rs` file under `dir` (sorted, skipping
/// `target/`).
///
/// # Errors
///
/// Returns an error if a directory cannot be read.
pub fn rust_files_under(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = fs::read_dir(&d).map_err(|e| format!("cannot read {}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read entry in {}: {e}", d.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            if path.is_dir() {
                if name != "target" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Renders `path` relative to `root` with forward slashes — the form
/// `lint.toml` entries and diagnostics use.
pub fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The first-party source trees the rules govern (repo-relative).
const FIRST_PARTY_DIRS: &[&str] = &["src", "tests", "examples", "crates"];

/// `true` if this file is a first-party crate root that rule D4 checks for
/// `#![forbid(unsafe_code)]`.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

/// Runs every rule over the workspace rooted at `root` with the given
/// allowlist. Returns all violations, including one per unused allowlist
/// entry — a stale exception is itself a defect.
///
/// # Errors
///
/// Returns an error if the source tree cannot be read.
pub fn scan_workspace(root: &Path, config: &Config) -> Result<Vec<Violation>, String> {
    let mut out = Vec::new();
    let mut used = vec![false; config.allows.len()];

    for dir in FIRST_PARTY_DIRS {
        let full = root.join(dir);
        if !full.is_dir() {
            continue;
        }
        for file in rust_files_under(&full)? {
            let rel = relative(root, &file);
            let source = fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let tokens = lex(&source);
            check_hash_collections(&rel, &tokens, config, &mut used, &mut out);
            check_ambient_entropy(&rel, &tokens, config, &mut used, &mut out);
            check_raw_index_casts(&rel, &tokens, config, &mut used, &mut out);
            check_dyn_probe(&rel, &tokens, config, &mut used, &mut out);
            check_allow_attrs(&rel, &tokens, config, &mut used, &mut out);
            if is_crate_root(&rel) {
                check_forbid_unsafe(&rel, &tokens, config, &mut used, &mut out);
            }
        }
    }

    // D3's hot-path list must point at real files: a renamed engine file
    // silently dropping out of coverage would be invisible otherwise.
    for hot in &config.hot_paths {
        if !root.join(hot).is_file() {
            out.push(Violation {
                path: "lint.toml".into(),
                line: 1,
                rule: "D3",
                message: format!("[hot-paths] lists `{hot}`, which does not exist"),
            });
        }
    }

    for (entry, used) in config.allows.iter().zip(used.iter()) {
        if !used {
            out.push(Violation {
                path: "lint.toml".into(),
                line: entry.line,
                rule: "A1",
                message: format!(
                    "allowlist entry ({} {} {}) matched nothing — remove the stale exception",
                    entry.rule,
                    entry.path,
                    entry.detail.as_deref().unwrap_or("*"),
                ),
            });
        }
    }

    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_roots_are_recognised() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(!is_crate_root("crates/core/src/engine.rs"));
        assert!(!is_crate_root("vendor/rand/src/lib.rs"));
    }

    #[test]
    fn unused_allowlist_entries_are_reported() {
        let toml = concat!(
            "[[allow]]\n",
            "rule = \"D1\"\n",
            "path = \"crates/core/src/never.rs\"\n",
            "reason = \"stale\"\n",
        );
        let config = Config::parse(toml).unwrap();
        // Scan an empty temp root: the entry can't match anything.
        let dir = std::env::temp_dir().join("hybridcast-lint-empty-root");
        fs::create_dir_all(&dir).unwrap();
        let v = scan_workspace(&dir, &config).unwrap();
        assert!(v.iter().any(|v| v.rule == "A1" && v.path == "lint.toml"));
    }
}
