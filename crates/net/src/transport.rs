//! Pluggable frame delivery between nodes.
//!
//! A [`Transport`] moves a [`Frame`] to a destination node. Two
//! implementations are provided:
//!
//! * [`InMemoryHub`] — crossbeam channels inside one process; the default
//!   for tests and for the `hybridcast-net` examples,
//! * [`TcpTransport`] — loopback (or LAN) TCP with length-prefixed frames,
//!   demonstrating that the node logic is transport-agnostic.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use hybridcast_graph::NodeId;

use crate::wire::{decode_frame, encode_frame, Frame};

/// Errors returned by transports.
#[derive(Debug)]
pub enum TransportError {
    /// The destination node is not registered with the transport.
    UnknownDestination(NodeId),
    /// The destination exists but its endpoint is no longer reachable.
    Disconnected(NodeId),
    /// An I/O error occurred while sending (TCP transport only).
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownDestination(id) => write!(f, "unknown destination {id}"),
            TransportError::Disconnected(id) => write!(f, "destination {id} disconnected"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Moves frames to other nodes. Implementations must be cheap to clone
/// (each node thread owns a clone).
pub trait Transport: Send + Sync {
    /// Sends a frame to `to`.
    ///
    /// # Errors
    ///
    /// Returns an error when the destination is unknown or unreachable; the
    /// caller treats this like a lost message (gossip is tolerant to loss).
    fn send(&self, to: NodeId, frame: Frame) -> Result<(), TransportError>;
}

/// An in-process hub: every node registers a crossbeam channel, sending is a
/// channel push.
#[derive(Debug, Clone, Default)]
pub struct InMemoryHub {
    endpoints: Arc<RwLock<HashMap<NodeId, Sender<Frame>>>>,
}

impl InMemoryHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a node and returns the receiving end of its mailbox.
    pub fn register(&self, id: NodeId) -> Receiver<Frame> {
        let (tx, rx) = unbounded();
        self.endpoints.write().insert(id, tx);
        rx
    }

    /// Removes a node's mailbox (subsequent sends to it fail), simulating a
    /// crash.
    pub fn unregister(&self, id: NodeId) {
        self.endpoints.write().remove(&id);
    }

    /// Number of registered endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.read().len()
    }

    /// Returns `true` if no endpoint is registered.
    pub fn is_empty(&self) -> bool {
        self.endpoints.read().is_empty()
    }
}

impl Transport for InMemoryHub {
    fn send(&self, to: NodeId, frame: Frame) -> Result<(), TransportError> {
        let endpoints = self.endpoints.read();
        let tx = endpoints
            .get(&to)
            .ok_or(TransportError::UnknownDestination(to))?;
        tx.send(frame).map_err(|_| TransportError::Disconnected(to))
    }
}

/// A TCP transport: every node runs a listener; frames are length-prefixed
/// JSON over short-lived connections (one connection per frame, which keeps
/// the implementation simple and is adequate for gossip traffic volumes).
#[derive(Debug, Clone, Default)]
pub struct TcpTransport {
    addresses: Arc<RwLock<HashMap<NodeId, SocketAddr>>>,
}

impl TcpTransport {
    /// Creates a transport with an empty address book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a listener for `id` on an OS-assigned loopback port, records
    /// its address in the shared address book and returns a channel
    /// receiving the decoded frames plus the listener's join handle.
    ///
    /// # Errors
    ///
    /// Returns an error if the listener socket cannot be bound.
    pub fn listen(&self, id: NodeId) -> std::io::Result<(Receiver<Frame>, JoinHandle<()>)> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        self.addresses.write().insert(id, addr);
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                let mut buf = BytesMut::new();
                let mut chunk = [0u8; 4096];
                loop {
                    match stream.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(read) => buf.extend_from_slice(&chunk[..read]),
                        Err(_) => break,
                    }
                }
                while let Ok(Some(frame)) = decode_frame(&mut buf) {
                    let is_shutdown = matches!(frame, Frame::Shutdown);
                    if tx.send(frame).is_err() || is_shutdown {
                        return;
                    }
                }
            }
        });
        Ok((rx, handle))
    }

    /// Removes a node from the address book.
    pub fn unregister(&self, id: NodeId) {
        self.addresses.write().remove(&id);
    }

    /// The address a node listens on, if registered.
    pub fn address_of(&self, id: NodeId) -> Option<SocketAddr> {
        self.addresses.read().get(&id).copied()
    }
}

impl Transport for TcpTransport {
    fn send(&self, to: NodeId, frame: Frame) -> Result<(), TransportError> {
        let addr = self
            .address_of(to)
            .ok_or(TransportError::UnknownDestination(to))?;
        let mut stream = TcpStream::connect(addr)?;
        let mut buf = BytesMut::new();
        encode_frame(&frame, &mut buf);
        stream.write_all(&buf)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcast_core::message::Message;

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn in_memory_hub_delivers_frames() {
        let hub = InMemoryHub::new();
        let rx = hub.register(n(1));
        assert_eq!(hub.len(), 1);
        hub.send(n(1), Frame::Shutdown).unwrap();
        assert_eq!(rx.recv().unwrap(), Frame::Shutdown);
    }

    #[test]
    fn in_memory_hub_rejects_unknown_destinations() {
        let hub = InMemoryHub::new();
        let err = hub.send(n(9), Frame::Shutdown).unwrap_err();
        assert!(matches!(err, TransportError::UnknownDestination(id) if id == n(9)));
        assert!(err.to_string().contains("n9"));
    }

    #[test]
    fn in_memory_hub_detects_dropped_receivers() {
        let hub = InMemoryHub::new();
        let rx = hub.register(n(2));
        drop(rx);
        let err = hub.send(n(2), Frame::Shutdown).unwrap_err();
        assert!(matches!(err, TransportError::Disconnected(_)));
        hub.unregister(n(2));
        assert!(hub.is_empty());
    }

    #[test]
    fn tcp_transport_round_trip() {
        let transport = TcpTransport::new();
        let (rx, handle) = transport.listen(n(7)).unwrap();
        assert!(transport.address_of(n(7)).is_some());

        let frame = Frame::Dissemination {
            from: n(3),
            message: Message::new(
                hybridcast_core::message::MessageId::new(n(3), 1),
                b"payload".to_vec(),
            ),
        };
        transport.send(n(7), frame.clone()).unwrap();
        let received = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert_eq!(received, frame);

        // Shutting down stops the listener thread.
        transport.send(n(7), Frame::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn tcp_transport_unknown_destination() {
        let transport = TcpTransport::new();
        let err = transport.send(n(1), Frame::Shutdown).unwrap_err();
        assert!(matches!(err, TransportError::UnknownDestination(_)));
    }
}
