//! The wire format spoken between nodes.
//!
//! Frames carry the three protocol layers: Cyclon shuffles, Vicinity
//! exchanges and dissemination pushes. Frames are serialized as JSON and,
//! when travelling over a byte stream (TCP), length-prefixed with a 32-bit
//! big-endian length so they can be reassembled from arbitrary read chunks.

use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

use hybridcast_core::message::Message;
use hybridcast_graph::NodeId;
use hybridcast_membership::descriptor::Descriptor;
use hybridcast_membership::proximity::RingPosition;

/// A descriptor as it travels on the wire: the peer's id, age and ring
/// position.
pub type WireDescriptor = Descriptor<RingPosition>;

/// A protocol frame exchanged between two nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// Cyclon shuffle request: the initiator offers `payload` descriptors.
    CyclonRequest {
        /// The initiating node.
        from: NodeId,
        /// Descriptors offered by the initiator (including itself, age 0).
        payload: Vec<WireDescriptor>,
    },
    /// Cyclon shuffle reply.
    CyclonResponse {
        /// The replying node.
        from: NodeId,
        /// Descriptors returned by the responder.
        payload: Vec<WireDescriptor>,
    },
    /// Vicinity exchange request.
    VicinityRequest {
        /// The initiating node.
        from: NodeId,
        /// The initiator's ring position (lets the responder rank its reply).
        from_position: RingPosition,
        /// Descriptors offered by the initiator.
        payload: Vec<WireDescriptor>,
    },
    /// Vicinity exchange reply.
    VicinityResponse {
        /// The replying node.
        from: NodeId,
        /// Descriptors returned by the responder.
        payload: Vec<WireDescriptor>,
    },
    /// A disseminated message pushed from `from`.
    Dissemination {
        /// The forwarding node (not necessarily the origin).
        from: NodeId,
        /// The message itself.
        message: Message,
    },
    /// Orderly termination of the receiving node's event loop.
    Shutdown,
}

impl Frame {
    /// The sender of the frame, when it carries one.
    pub fn sender(&self) -> Option<NodeId> {
        match self {
            Frame::CyclonRequest { from, .. }
            | Frame::CyclonResponse { from, .. }
            | Frame::VicinityRequest { from, .. }
            | Frame::VicinityResponse { from, .. }
            | Frame::Dissemination { from, .. } => Some(*from),
            Frame::Shutdown => None,
        }
    }
}

/// Encodes a frame into `buf` as a 4-byte big-endian length followed by the
/// JSON body.
///
/// # Panics
///
/// Panics if the frame fails to serialize (only possible with non-string map
/// keys, which the frame types never contain).
pub fn encode_frame(frame: &Frame, buf: &mut BytesMut) {
    let body = serde_json::to_vec(frame).expect("frame serialization cannot fail");
    buf.reserve(4 + body.len());
    buf.put_u32(body.len() as u32);
    buf.put_slice(&body);
}

/// Attempts to decode one length-prefixed frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete frame
/// (more bytes must be read from the stream first).
///
/// # Errors
///
/// Returns an error if the frame body is not valid JSON for a [`Frame`].
pub fn decode_frame(buf: &mut BytesMut) -> Result<Option<Frame>, serde_json::Error> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    let body = buf.split_to(len);
    serde_json::from_slice(&body).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::CyclonRequest {
                from: n(1),
                payload: vec![Descriptor::new(n(1), 42)],
            },
            Frame::CyclonResponse {
                from: n(2),
                payload: vec![Descriptor::with_age(n(3), 7, 99)],
            },
            Frame::VicinityRequest {
                from: n(1),
                from_position: 1234,
                payload: vec![],
            },
            Frame::VicinityResponse {
                from: n(2),
                payload: vec![Descriptor::new(n(5), 500)],
            },
            Frame::Dissemination {
                from: n(4),
                message: Message::marker(n(4), 9),
            },
            Frame::Shutdown,
        ]
    }

    #[test]
    fn sender_extraction() {
        assert_eq!(sample_frames()[0].sender(), Some(n(1)));
        assert_eq!(Frame::Shutdown.sender(), None);
    }

    #[test]
    fn encode_decode_round_trip() {
        for frame in sample_frames() {
            let mut buf = BytesMut::new();
            encode_frame(&frame, &mut buf);
            let decoded = decode_frame(&mut buf).unwrap().unwrap();
            assert_eq!(decoded, frame);
            assert!(buf.is_empty(), "frame consumed entirely");
        }
    }

    #[test]
    fn decode_handles_partial_and_back_to_back_frames() {
        let frames = sample_frames();
        let mut stream = BytesMut::new();
        for frame in &frames {
            encode_frame(frame, &mut stream);
        }

        // Feed the stream a few bytes at a time, as a TCP read would.
        let mut rx_buf = BytesMut::new();
        let mut decoded = Vec::new();
        for chunk in stream.chunks(7) {
            rx_buf.extend_from_slice(chunk);
            while let Some(frame) = decode_frame(&mut rx_buf).unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded, frames);
    }

    #[test]
    fn decode_incomplete_returns_none() {
        let mut buf = BytesMut::new();
        encode_frame(&Frame::Shutdown, &mut buf);
        let mut partial = BytesMut::from(&buf[..buf.len() - 1]);
        assert!(decode_frame(&mut partial).unwrap().is_none());
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut buf = BytesMut::new();
        buf.put_u32(3);
        buf.put_slice(b"???");
        assert!(decode_frame(&mut buf).is_err());
    }
}
