//! Real-transport runtime for the hybridcast dissemination protocols.
//!
//! The paper evaluates RandCast and RingCast inside a cycle-driven simulator
//! (reproduced by `hybridcast-sim`). This crate demonstrates that the exact
//! same protocol implementations — Cyclon and Vicinity from
//! `hybridcast-membership`, the gossip-target selectors from
//! `hybridcast-core` — also run as real message-passing processes:
//!
//! * [`wire`] — the frame format exchanged between nodes (length-prefixed
//!   JSON, friendly to both channels and TCP streams),
//! * [`transport`] — pluggable delivery: an in-process hub backed by
//!   crossbeam channels ([`transport::InMemoryHub`]) and a loopback TCP
//!   transport ([`transport::TcpTransport`]),
//! * [`node`] — a node running in its own thread: periodic Cyclon/Vicinity
//!   gossip plus reactive push dissemination,
//! * [`cluster`] — convenience orchestration: boot `n` nodes, let the
//!   overlay converge, publish messages, inspect who received what.
//!
//! # Example
//!
//! ```
//! use hybridcast_net::cluster::{Cluster, ClusterConfig};
//! use std::time::Duration;
//!
//! let config = ClusterConfig {
//!     nodes: 16,
//!     gossip_interval: Duration::from_millis(5),
//!     fanout: 3,
//!     ..ClusterConfig::default()
//! };
//! let mut cluster = Cluster::start(config).expect("cluster boots");
//! cluster.run_for(Duration::from_millis(300));
//! let message = cluster.publish_from_first().expect("publish succeeds");
//! cluster.run_for(Duration::from_millis(200));
//! let delivered = cluster.delivery_count(message);
//! assert!(delivered >= 14, "only {delivered}/16 nodes got the message");
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod node;
pub mod transport;
pub mod wire;

pub use cluster::{Cluster, ClusterConfig};
pub use transport::{InMemoryHub, TcpTransport, Transport};
pub use wire::Frame;
