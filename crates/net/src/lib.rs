//! Real-transport runtime for the hybridcast dissemination protocols.
//!
//! The paper evaluates RandCast and RingCast inside a cycle-driven simulator
//! (reproduced by `hybridcast-sim`). This crate demonstrates that the exact
//! same protocol implementations — Cyclon and Vicinity from
//! `hybridcast-membership`, the gossip-target selectors from
//! `hybridcast-core` — also run as real message-passing processes:
//!
//! * [`wire`] — the frame format exchanged between nodes (length-prefixed
//!   JSON, friendly to both channels and TCP streams),
//! * [`transport`] — pluggable delivery: an in-process hub backed by
//!   crossbeam channels ([`transport::InMemoryHub`]) and a loopback TCP
//!   transport ([`transport::TcpTransport`]),
//! * [`node`] — a node running in its own thread: periodic Cyclon/Vicinity
//!   gossip plus reactive push dissemination,
//! * [`cluster`] — convenience orchestration: boot `n` nodes, let the
//!   overlay converge, publish messages, inspect who received what.
//!
//! # Where this crate sits
//!
//! The membership exchange halves and the `GossipTargetSelector` policies
//! are *shared* with the simulator: a node here assembles the same
//! momentary view (Cyclon view → r-links, ring neighbours → d-links) that
//! `hybridcast_sim::Network::overlay_snapshot` freezes, and pushes fresh
//! messages to the targets the selector picks — i.e. this runtime is the
//! asynchronous, wall-clock instantiation of the event-driven latency
//! model that `hybridcast_core::async_engine` simulates with virtual
//! timestamps. Anything added to the protocols (new proximity functions,
//! multi-ring d-links, new selectors) is automatically available here.
//!
//! # Determinism boundary
//!
//! This is deliberately the **only** nondeterministic layer of the
//! workspace: thread scheduling and (for TCP) the kernel decide delivery
//! order, so its tests assert convergence envelopes (e.g. "≥ 14 of 16
//! nodes delivered") rather than exact traces. Every quantitative claim
//! lives in the deterministic simulator + engine layers; this crate exists
//! to show the protocol code is not simulator-bound. Per-node state still
//! uses the same seeded `ChaCha8Rng`, so single-node protocol decisions
//! remain reproducible given an identical inbound frame sequence.
//!
//! # Scale expectations
//!
//! One OS thread per node bounds practical cluster sizes to the hundreds —
//! this is a demonstrator, not the million-node path (that is the arena
//! runtime + dense engines; see `docs/ARCHITECTURE.md`). A dense,
//! shared-arena transport runtime is an open ROADMAP item.
//!
//! # Example
//!
//! ```
//! use hybridcast_net::cluster::{Cluster, ClusterConfig};
//! use std::time::Duration;
//!
//! let config = ClusterConfig {
//!     nodes: 16,
//!     gossip_interval: Duration::from_millis(5),
//!     fanout: 3,
//!     ..ClusterConfig::default()
//! };
//! let mut cluster = Cluster::start(config).expect("cluster boots");
//! cluster.run_for(Duration::from_millis(300));
//! let message = cluster.publish_from_first().expect("publish succeeds");
//! cluster.run_for(Duration::from_millis(200));
//! let delivered = cluster.delivery_count(message);
//! assert!(delivered >= 14, "only {delivered}/16 nodes got the message");
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod node;
pub mod transport;
pub mod wire;

pub use cluster::{Cluster, ClusterConfig};
pub use transport::{InMemoryHub, TcpTransport, Transport};
pub use wire::Frame;
