//! Orchestration of a whole in-process cluster of networked nodes.

use std::sync::Arc;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hybridcast_core::message::{Message, MessageId};
use hybridcast_core::protocols::{GossipTargetSelector, RandCast, RingCast};
use hybridcast_graph::NodeId;
use hybridcast_membership::descriptor::Descriptor;

use crate::node::{spawn_node, DeliveryLog, NodeConfig, NodeHandle, NodeStats};
use crate::transport::{InMemoryHub, Transport, TransportError};
use crate::wire::Frame;

/// Which dissemination protocol the cluster's nodes forward messages with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Hybrid dissemination over ring neighbours plus random links.
    RingCast,
    /// Purely probabilistic dissemination over random links only.
    RandCast,
}

/// Configuration of an in-process cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes to spawn.
    pub nodes: usize,
    /// Membership gossip interval of every node.
    pub gossip_interval: Duration,
    /// Dissemination fanout `F`.
    pub fanout: usize,
    /// Dissemination protocol.
    pub protocol: Protocol,
    /// Cyclon/Vicinity view length (the paper uses 20 for both).
    pub view_length: usize,
    /// Cyclon/Vicinity gossip (shuffle) length.
    pub gossip_length: usize,
    /// Seed controlling ring positions and per-node RNGs.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 16,
            gossip_interval: Duration::from_millis(10),
            fanout: 3,
            protocol: Protocol::RingCast,
            view_length: 20,
            gossip_length: 5,
            seed: 0,
        }
    }
}

/// A running cluster: node threads, their shared hub and the delivery log.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    hub: InMemoryHub,
    handles: Vec<NodeHandle>,
    log: DeliveryLog,
    next_sequence: u64,
}

impl Cluster {
    /// Boots `config.nodes` nodes on an in-memory hub. Every node except the
    /// first bootstraps with node 0 as its single introducer (the paper's
    /// star-topology join).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid (zero nodes or zero
    /// fanout).
    pub fn start(config: ClusterConfig) -> Result<Self, String> {
        if config.nodes == 0 {
            return Err("cluster needs at least one node".into());
        }
        if config.fanout == 0 {
            return Err("fanout must be positive".into());
        }
        let hub = InMemoryHub::new();
        let log = DeliveryLog::new();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let selector: Arc<dyn GossipTargetSelector + Send + Sync> = match config.protocol {
            Protocol::RingCast => Arc::new(RingCast::new(config.fanout)),
            Protocol::RandCast => Arc::new(RandCast::new(config.fanout)),
        };

        let positions: Vec<u64> = (0..config.nodes).map(|_| rng.gen()).collect();
        let mut handles = Vec::with_capacity(config.nodes);
        for i in 0..config.nodes {
            let id = NodeId::new(i as u64);
            let mailbox = hub.register(id);
            let bootstrap = if i == 0 {
                Vec::new()
            } else {
                vec![Descriptor::new(NodeId::new(0), positions[0])]
            };
            let node_config = NodeConfig {
                id,
                ring_position: positions[i],
                gossip_interval: config.gossip_interval,
                cyclon_view: config.view_length,
                cyclon_shuffle: config.gossip_length,
                vicinity_view: config.view_length,
                vicinity_gossip: config.gossip_length,
                seed: config.seed.wrapping_add(i as u64 + 1),
            };
            handles.push(spawn_node(
                node_config,
                hub.clone(),
                mailbox,
                bootstrap,
                selector.clone(),
                log.clone(),
            ));
        }

        Ok(Cluster {
            config,
            hub,
            handles,
            log,
            next_sequence: 0,
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of nodes in the cluster.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Returns `true` if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The shared delivery log.
    pub fn delivery_log(&self) -> &DeliveryLog {
        &self.log
    }

    /// Blocks the calling thread for `duration`, letting the node threads
    /// gossip and disseminate.
    pub fn run_for(&self, duration: Duration) {
        std::thread::sleep(duration);
    }

    /// Publishes a new message originating at `origin` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns an error if `origin` is not a cluster node.
    pub fn publish(&mut self, origin: NodeId) -> Result<MessageId, TransportError> {
        let id = MessageId::new(origin, self.next_sequence);
        self.next_sequence += 1;
        self.hub.send(
            origin,
            Frame::Dissemination {
                from: origin,
                message: Message::marker(origin, id.sequence),
            },
        )?;
        Ok(id)
    }

    /// Publishes a message from node 0.
    ///
    /// # Errors
    ///
    /// Returns an error if node 0 is not reachable.
    pub fn publish_from_first(&mut self) -> Result<MessageId, TransportError> {
        self.publish(NodeId::new(0))
    }

    /// Number of distinct nodes that have received `message` so far.
    pub fn delivery_count(&self, message: MessageId) -> usize {
        self.log.count(message)
    }

    /// Hit ratio of `message` over the whole cluster, in `[0, 1]`.
    pub fn hit_ratio(&self, message: MessageId) -> f64 {
        self.delivery_count(message) as f64 / self.len() as f64
    }

    /// Simulates a crash of `node`: its mailbox is unregistered so every
    /// frame sent to it from now on is lost. Note the node thread keeps
    /// running until [`Cluster::shutdown`]; it simply becomes unreachable,
    /// which is indistinguishable from a crash for the other nodes.
    pub fn partition_node(&self, node: NodeId) {
        self.hub.unregister(node);
    }

    /// Shuts every node down and collects their statistics.
    pub fn shutdown(self) -> Vec<NodeStats> {
        for handle in &self.handles {
            // A node whose mailbox was unregistered cannot receive the
            // shutdown frame; dropping the hub ends its loop via
            // disconnection instead.
            let _ = self.hub.send(handle.id, Frame::Shutdown);
        }
        // Unregister everything so disconnected mailboxes wake up.
        for handle in &self.handles {
            self.hub.unregister(handle.id);
        }
        self.handles.into_iter().map(NodeHandle::join).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_configurations() {
        assert!(Cluster::start(ClusterConfig {
            nodes: 0,
            ..ClusterConfig::default()
        })
        .is_err());
        assert!(Cluster::start(ClusterConfig {
            fanout: 0,
            ..ClusterConfig::default()
        })
        .is_err());
    }

    #[test]
    fn ringcast_cluster_disseminates_to_everyone() {
        let mut cluster = Cluster::start(ClusterConfig {
            nodes: 20,
            gossip_interval: Duration::from_millis(5),
            fanout: 3,
            protocol: Protocol::RingCast,
            seed: 42,
            ..ClusterConfig::default()
        })
        .unwrap();
        assert_eq!(cluster.len(), 20);

        // Let the overlay converge, then publish.
        cluster.run_for(Duration::from_millis(400));
        let message = cluster.publish_from_first().unwrap();
        cluster.run_for(Duration::from_millis(300));

        let delivered = cluster.delivery_count(message);
        assert!(
            delivered >= 18,
            "expected near-complete delivery, got {delivered}/20"
        );
        assert!(cluster.hit_ratio(message) >= 0.9);

        let stats = cluster.shutdown();
        assert_eq!(stats.len(), 20);
        let total_forwarded: u64 = stats.iter().map(|s| s.messages_forwarded).sum();
        assert!(total_forwarded >= delivered as u64 - 1);
    }

    #[test]
    fn partitioned_node_misses_messages() {
        let mut cluster = Cluster::start(ClusterConfig {
            nodes: 12,
            gossip_interval: Duration::from_millis(5),
            fanout: 4,
            protocol: Protocol::RingCast,
            seed: 7,
            ..ClusterConfig::default()
        })
        .unwrap();
        cluster.run_for(Duration::from_millis(300));

        let victim = NodeId::new(5);
        cluster.partition_node(victim);
        let message = cluster.publish_from_first().unwrap();
        cluster.run_for(Duration::from_millis(200));

        let receivers = cluster.delivery_log().receivers(message);
        assert!(
            !receivers.contains(&victim),
            "partitioned node cannot receive"
        );
        assert!(receivers.len() >= 9, "the rest still get the message");
        cluster.shutdown();
    }
}
