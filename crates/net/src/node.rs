//! A node running the full protocol stack in its own thread.
//!
//! Each [`spawn_node`] call starts a thread owning one Cyclon instance, one
//! Vicinity instance and a dissemination-deduplication set. The thread
//! alternates between
//!
//! * **reactive work** — handling incoming frames from its mailbox
//!   (shuffle requests/replies, vicinity exchanges, pushed messages), and
//! * **periodic work** — once per `gossip_interval` it initiates one Cyclon
//!   shuffle and one Vicinity exchange, exactly like a cycle of the
//!   simulator.
//!
//! Freshly received messages are recorded in the shared [`DeliveryLog`] and
//! forwarded to the targets chosen by the configured
//! [`GossipTargetSelector`], over the node's *local* view: its r-links are
//! its current Cyclon view, its d-links its current ring neighbours — the
//! same information a simulated node exposes through an overlay snapshot.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError};
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use hybridcast_core::message::MessageId;
use hybridcast_core::overlay::Overlay;
use hybridcast_core::protocols::GossipTargetSelector;
use hybridcast_graph::NodeId;
use hybridcast_membership::cyclon::CyclonNode;
use hybridcast_membership::proximity::RingPosition;
use hybridcast_membership::vicinity::{PendingExchange, VicinityNode};

use crate::transport::Transport;
use crate::wire::{Frame, WireDescriptor};

/// Configuration of a single networked node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The node's identifier.
    pub id: NodeId,
    /// The node's position on the identifier ring.
    pub ring_position: RingPosition,
    /// How often the node initiates membership gossip (the protocol cycle).
    pub gossip_interval: Duration,
    /// Cyclon view length.
    pub cyclon_view: usize,
    /// Cyclon shuffle length.
    pub cyclon_shuffle: usize,
    /// Vicinity view length.
    pub vicinity_view: usize,
    /// Vicinity gossip length.
    pub vicinity_gossip: usize,
    /// RNG seed for this node.
    pub seed: u64,
}

/// Counters a node reports when it shuts down.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Frames of any kind received.
    pub frames_received: u64,
    /// Dissemination messages received (including duplicates).
    pub messages_received: u64,
    /// Distinct dissemination messages seen.
    pub distinct_messages: u64,
    /// Dissemination messages forwarded to other nodes.
    pub messages_forwarded: u64,
}

/// A shared record of which node received which message, used by tests and
/// examples to measure hit ratios of live runs.
#[derive(Debug, Clone, Default)]
pub struct DeliveryLog {
    inner: Arc<Mutex<BTreeMap<MessageId, BTreeSet<NodeId>>>>,
}

impl DeliveryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` received `message`.
    pub fn record(&self, message: MessageId, node: NodeId) {
        self.inner.lock().entry(message).or_default().insert(node);
    }

    /// Number of distinct nodes that received `message`.
    pub fn count(&self, message: MessageId) -> usize {
        self.inner
            .lock()
            .get(&message)
            .map(BTreeSet::len)
            .unwrap_or(0)
    }

    /// The nodes that received `message`.
    pub fn receivers(&self, message: MessageId) -> Vec<NodeId> {
        self.inner
            .lock()
            .get(&message)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All messages the log has seen.
    pub fn messages(&self) -> Vec<MessageId> {
        self.inner.lock().keys().copied().collect()
    }
}

/// The node's local view of the overlay, assembled on demand from its
/// current Cyclon view (r-links) and Vicinity ring neighbours (d-links).
/// Only the owner's links are known; liveness of peers is unknown and
/// assumed (pushing to a dead peer is simply a lost message).
#[derive(Debug, Clone)]
struct LocalView {
    owner: NodeId,
    r_links: Vec<NodeId>,
    d_links: Vec<NodeId>,
}

impl Overlay for LocalView {
    fn is_live(&self, _node: NodeId) -> bool {
        true
    }

    fn live_node_ids(&self) -> Vec<NodeId> {
        vec![self.owner]
    }

    fn r_links(&self, node: NodeId) -> Vec<NodeId> {
        if node == self.owner {
            self.r_links.clone()
        } else {
            Vec::new()
        }
    }

    fn d_links(&self, node: NodeId) -> Vec<NodeId> {
        if node == self.owner {
            self.d_links.clone()
        } else {
            Vec::new()
        }
    }
}

/// Handle of a spawned node: its id and the join handle returning the
/// node's final statistics.
#[derive(Debug)]
pub struct NodeHandle {
    /// The node's identifier.
    pub id: NodeId,
    handle: JoinHandle<NodeStats>,
}

impl NodeHandle {
    /// Waits for the node thread to finish (after a `Shutdown` frame) and
    /// returns its statistics.
    ///
    /// # Panics
    ///
    /// Panics if the node thread itself panicked.
    pub fn join(self) -> NodeStats {
        self.handle.join().expect("node thread panicked")
    }
}

/// Spawns a node thread.
///
/// `mailbox` is the receiving end registered with the transport;
/// `bootstrap` seeds the Cyclon view (typically a single introducer, the
/// star-topology join of the paper); `selector` decides how dissemination
/// messages are forwarded.
pub fn spawn_node<T>(
    config: NodeConfig,
    transport: T,
    mailbox: Receiver<Frame>,
    bootstrap: Vec<WireDescriptor>,
    selector: Arc<dyn GossipTargetSelector + Send + Sync>,
    log: DeliveryLog,
) -> NodeHandle
where
    T: Transport + Clone + 'static,
{
    let id = config.id;
    let handle = std::thread::spawn(move || {
        NodeWorker::new(config, transport, mailbox, bootstrap, selector, log).run()
    });
    NodeHandle { id, handle }
}

struct NodeWorker<T> {
    config: NodeConfig,
    transport: T,
    mailbox: Receiver<Frame>,
    selector: Arc<dyn GossipTargetSelector + Send + Sync>,
    log: DeliveryLog,
    cyclon: CyclonNode<RingPosition>,
    vicinity: VicinityNode<RingPosition>,
    pending_cyclon: Option<hybridcast_membership::cyclon::PendingShuffle<RingPosition>>,
    pending_vicinity: Option<PendingExchange>,
    seen: HashSet<MessageId>,
    rng: ChaCha8Rng,
    stats: NodeStats,
}

impl<T: Transport> NodeWorker<T> {
    fn new(
        config: NodeConfig,
        transport: T,
        mailbox: Receiver<Frame>,
        bootstrap: Vec<WireDescriptor>,
        selector: Arc<dyn GossipTargetSelector + Send + Sync>,
        log: DeliveryLog,
    ) -> Self {
        let mut cyclon = CyclonNode::new(
            config.id,
            config.ring_position,
            config.cyclon_view,
            config.cyclon_shuffle,
        );
        for contact in bootstrap {
            cyclon.add_bootstrap_contact(contact);
        }
        let vicinity = VicinityNode::new(
            config.id,
            config.ring_position,
            config.vicinity_view,
            config.vicinity_gossip,
        );
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        NodeWorker {
            config,
            transport,
            mailbox,
            selector,
            log,
            cyclon,
            vicinity,
            pending_cyclon: None,
            pending_vicinity: None,
            seen: HashSet::new(),
            rng,
            stats: NodeStats::default(),
        }
    }

    fn run(mut self) -> NodeStats {
        let mut last_gossip = Instant::now();
        loop {
            let elapsed = last_gossip.elapsed();
            let timeout = self
                .config
                .gossip_interval
                .checked_sub(elapsed)
                .unwrap_or(Duration::from_millis(1))
                .max(Duration::from_millis(1));
            match self.mailbox.recv_timeout(timeout) {
                Ok(Frame::Shutdown) => break,
                Ok(frame) => {
                    self.stats.frames_received += 1;
                    self.handle_frame(frame);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if last_gossip.elapsed() >= self.config.gossip_interval {
                self.gossip_cycle();
                last_gossip = Instant::now();
            }
        }
        self.stats
    }

    fn cyclon_candidates(&self) -> Vec<WireDescriptor> {
        self.cyclon.view().iter().cloned().collect()
    }

    fn handle_frame(&mut self, frame: Frame) {
        match frame {
            Frame::CyclonRequest { from, payload } => {
                let reply = self
                    .cyclon
                    .handle_shuffle_request(from, &payload, &mut self.rng);
                // Every descriptor that passes by is also a proximity candidate.
                self.vicinity.absorb_candidates(&payload);
                let _ = self.transport.send(
                    from,
                    Frame::CyclonResponse {
                        from: self.config.id,
                        payload: reply,
                    },
                );
            }
            Frame::CyclonResponse { from, payload } => {
                if let Some(pending) = self.pending_cyclon.take() {
                    if pending.target == from {
                        self.cyclon.handle_shuffle_response(&pending, &payload);
                        self.vicinity.absorb_candidates(&payload);
                    } else {
                        self.pending_cyclon = Some(pending);
                    }
                }
            }
            Frame::VicinityRequest {
                from,
                from_position,
                payload,
            } => {
                let candidates = self.cyclon_candidates();
                let reply = self.vicinity.handle_exchange_request(
                    from,
                    Some(&from_position),
                    &payload,
                    &candidates,
                );
                let _ = self.transport.send(
                    from,
                    Frame::VicinityResponse {
                        from: self.config.id,
                        payload: reply,
                    },
                );
            }
            Frame::VicinityResponse { from, payload } => {
                if let Some(pending) = self.pending_vicinity.take() {
                    if pending.target == from {
                        let candidates = self.cyclon_candidates();
                        self.vicinity
                            .handle_exchange_response(&pending, &payload, &candidates);
                    } else {
                        self.pending_vicinity = Some(pending);
                    }
                }
            }
            Frame::Dissemination { from, message } => {
                self.stats.messages_received += 1;
                if !self.seen.insert(message.id) {
                    return;
                }
                self.stats.distinct_messages += 1;
                self.log.record(message.id, self.config.id);
                let sender = if from == self.config.id {
                    None
                } else {
                    Some(from)
                };
                let (pred, succ) = self.vicinity.ring_neighbors();
                let mut d_links = Vec::new();
                for link in [pred, succ].into_iter().flatten() {
                    if !d_links.contains(&link) {
                        d_links.push(link);
                    }
                }
                let view = LocalView {
                    owner: self.config.id,
                    r_links: self.cyclon.view().node_ids(),
                    d_links,
                };
                let targets =
                    self.selector
                        .select_targets(&view, self.config.id, sender, &mut self.rng);
                for target in targets {
                    self.stats.messages_forwarded += 1;
                    let _ = self.transport.send(
                        target,
                        Frame::Dissemination {
                            from: self.config.id,
                            message: message.clone(),
                        },
                    );
                }
            }
            Frame::Shutdown => unreachable!("handled by the event loop"),
        }
    }

    fn gossip_cycle(&mut self) {
        // Cyclon: an unanswered shuffle from the previous cycle counts as
        // failed (the target was already dropped from the view on initiate).
        if let Some(pending) = self.pending_cyclon.take() {
            self.cyclon.shuffle_failed(&pending);
        }
        self.cyclon.begin_cycle();
        if let Some((target, payload)) = self.cyclon.initiate_shuffle(&mut self.rng) {
            let pending = CyclonNode::pending(target, payload.clone());
            let sent = self.transport.send(
                target,
                Frame::CyclonRequest {
                    from: self.config.id,
                    payload,
                },
            );
            match sent {
                Ok(()) => self.pending_cyclon = Some(pending),
                Err(_) => self.cyclon.shuffle_failed(&pending),
            }
        }

        // Vicinity: an unanswered exchange drops the unresponsive neighbour.
        if let Some(pending) = self.pending_vicinity.take() {
            self.vicinity.exchange_failed(&pending);
        }
        self.vicinity.begin_cycle();
        let candidates = self.cyclon_candidates();
        if let Some((target, payload)) = self.vicinity.initiate_exchange(&candidates, &mut self.rng)
        {
            let pending = PendingExchange { target };
            let sent = self.transport.send(
                target,
                Frame::VicinityRequest {
                    from: self.config.id,
                    from_position: self.config.ring_position,
                    payload,
                },
            );
            match sent {
                Ok(()) => self.pending_vicinity = Some(pending),
                Err(_) => self.vicinity.exchange_failed(&pending),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InMemoryHub;
    use hybridcast_core::message::Message;
    use hybridcast_core::protocols::RingCast;
    use hybridcast_membership::descriptor::Descriptor;

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    fn descriptor(i: u64, pos: RingPosition) -> WireDescriptor {
        Descriptor::new(n(i), pos)
    }

    fn config(i: u64, pos: RingPosition) -> NodeConfig {
        NodeConfig {
            id: n(i),
            ring_position: pos,
            gossip_interval: Duration::from_millis(5),
            cyclon_view: 10,
            cyclon_shuffle: 4,
            vicinity_view: 10,
            vicinity_gossip: 4,
            seed: i,
        }
    }

    #[test]
    fn delivery_log_counts_distinct_receivers() {
        let log = DeliveryLog::new();
        let msg = MessageId::new(n(0), 1);
        log.record(msg, n(1));
        log.record(msg, n(1));
        log.record(msg, n(2));
        assert_eq!(log.count(msg), 2);
        assert_eq!(log.receivers(msg), vec![n(1), n(2)]);
        assert_eq!(log.messages(), vec![msg]);
        assert_eq!(log.count(MessageId::new(n(0), 9)), 0);
    }

    #[test]
    fn local_view_only_knows_its_owner() {
        let view = LocalView {
            owner: n(0),
            r_links: vec![n(1)],
            d_links: vec![n(2)],
        };
        assert_eq!(view.r_links(n(0)), vec![n(1)]);
        assert_eq!(view.d_links(n(0)), vec![n(2)]);
        assert!(view.r_links(n(5)).is_empty());
        assert!(view.is_live(n(99)));
    }

    #[test]
    fn two_nodes_exchange_membership_and_messages() {
        let hub = InMemoryHub::new();
        let rx0 = hub.register(n(0));
        let rx1 = hub.register(n(1));
        let log = DeliveryLog::new();
        let selector: Arc<dyn GossipTargetSelector + Send + Sync> = Arc::new(RingCast::new(2));

        let h0 = spawn_node(
            config(0, 100),
            hub.clone(),
            rx0,
            vec![descriptor(1, 200)],
            selector.clone(),
            log.clone(),
        );
        let h1 = spawn_node(
            config(1, 200),
            hub.clone(),
            rx1,
            vec![descriptor(0, 100)],
            selector,
            log.clone(),
        );

        // Let a few gossip cycles run, then publish from node 0.
        std::thread::sleep(Duration::from_millis(60));
        let message = Message::marker(n(0), 1);
        hub.send(
            n(0),
            Frame::Dissemination {
                from: n(0),
                message,
            },
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(60));

        let msg_id = MessageId::new(n(0), 1);
        assert_eq!(log.count(msg_id), 2, "both nodes must see the message");

        hub.send(n(0), Frame::Shutdown).unwrap();
        hub.send(n(1), Frame::Shutdown).unwrap();
        let s0 = h0.join();
        let s1 = h1.join();
        assert!(s0.frames_received > 0);
        assert_eq!(s0.distinct_messages, 1);
        assert_eq!(s1.distinct_messages, 1);
        assert!(s0.messages_forwarded >= 1, "origin forwarded the message");
    }
}
