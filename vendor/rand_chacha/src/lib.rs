//! Offline vendored ChaCha-based generator for the hybridcast workspace.
//!
//! Implements the real ChaCha stream cipher core (D. J. Bernstein) with 8
//! rounds, exposed through the vendored [`rand`] traits. Every experiment in
//! the workspace seeds one of these via [`rand::SeedableRng::seed_from_u64`],
//! which makes all simulations bit-reproducible across runs and platforms.
//!
//! ```
//! use rand::{Rng, SeedableRng};
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut a = ChaCha8Rng::seed_from_u64(42);
//! let mut b = ChaCha8Rng::seed_from_u64(42);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! ```

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A deterministic random number generator backed by the ChaCha8 stream
/// cipher.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key words.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the ChaCha state).
    counter: u64,
    /// Buffered keystream block.
    buffer: [u32; 16],
    /// Next unread word index in `buffer`; 16 means "refill needed".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14–15 are the (zero) stream id.

        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_enough_for_simulation() {
        // Coarse sanity: mean of many unit draws is near 0.5 and all 16
        // buckets of the unit interval get hit.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut buckets = [0usize; 16];
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let x: f64 = rng.gen();
            sum += x;
            buckets[(x * 16.0) as usize] += 1;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
        assert!(
            buckets.iter().all(|&b| b > N / 32),
            "skewed buckets {buckets:?}"
        );
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        rng.next_u64();
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
