//! Offline shim for the subset of `crossbeam` the workspace uses: the
//! `channel` module with unbounded MPSC channels.
//!
//! `std::sync::mpsc` provides the same operations with the same types since
//! Rust 1.72 made `Sender` both `Send` and `Sync`; this shim simply re-maps
//! the constructor name (`unbounded`) and re-exports the error enums, so the
//! `hybridcast-net` runtime compiles unchanged.

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer single-consumer channels (`crossbeam::channel` shape).

    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_and_receive_across_threads() {
        let (tx, rx) = unbounded();
        let sender = tx.clone();
        std::thread::spawn(move || sender.send(41u32).unwrap());
        assert_eq!(rx.recv().unwrap(), 41);
        drop(tx);
        assert!(rx.recv().is_err(), "disconnected after all senders drop");
    }

    #[test]
    fn recv_timeout_reports_timeout_then_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
