//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the vendored serde shim.
//!
//! Written directly against the compiler's `proc_macro` API (no `syn`, no
//! `quote` — the build runs fully offline). The parser extracts just enough
//! structure from the item: the type name, its generic parameter names, and
//! the shape of its fields or variants. Supported shapes match what the
//! hybridcast workspace derives:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, like real serde),
//! * enums with unit, tuple and struct variants (externally tagged).
//!
//! `#[serde(...)]` helper attributes are accepted and ignored: the only one
//! the workspace uses is `#[serde(transparent)]` on a newtype struct, whose
//! behaviour is already the default for newtypes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Direction::Serialize)
        .parse()
        .expect("generated impl must parse")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Direction::Deserialize)
        .parse()
        .expect("generated impl must parse")
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn skip_attributes(&mut self) {
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next(); // '#'
                         // Inner attribute bang (not expected, but harmless).
            if matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                self.next();
            }
            match self.next() {
                Some(TokenTree::Group(_)) => {}
                other => panic!("malformed attribute near {other:?}"),
            }
        }
    }

    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.next();
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.next(); // pub(crate) / pub(super)
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected identifier, found {other:?}"),
        }
    }

    /// Parses `<A, B: Bound, ...>` if present, returning the parameter names.
    fn parse_generics(&mut self) -> Vec<String> {
        if !matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            return Vec::new();
        }
        self.next(); // '<'
        let mut params = Vec::new();
        let mut depth = 1usize;
        let mut at_param_start = true;
        while depth > 0 {
            match self.next().expect("unterminated generic parameter list") {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => at_param_start = true,
                TokenTree::Ident(id) if depth == 1 && at_param_start => {
                    let name = id.to_string();
                    if name != "const" {
                        params.push(name);
                    }
                    at_param_start = false;
                }
                _ => {}
            }
        }
        params
    }

    /// Skips type tokens until a `,` at angle-bracket depth zero, consuming
    /// the comma. Returns `false` when the cursor is exhausted instead.
    fn skip_type_to_comma(&mut self) -> bool {
        let mut depth = 0usize;
        loop {
            match self.next() {
                None => return false,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => return true,
                Some(_) => {}
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cursor = Cursor::new(input);
    cursor.skip_attributes();
    cursor.skip_visibility();
    let kind = cursor.expect_ident();
    let name = cursor.expect_ident();
    let generics = cursor.parse_generics();

    match kind.as_str() {
        "struct" => match cursor.next() {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => Item {
                name,
                generics,
                shape: Shape::NamedStruct(parse_named_fields(body.stream())),
            },
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => Item {
                name,
                generics,
                shape: Shape::TupleStruct(count_tuple_fields(body.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                generics,
                shape: Shape::UnitStruct,
            },
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match cursor.next() {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => Item {
                name,
                generics,
                shape: Shape::Enum(parse_variants(body.stream())),
            },
            other => panic!("unsupported enum body: {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        cursor.skip_attributes();
        if cursor.peek().is_none() {
            break;
        }
        cursor.skip_visibility();
        fields.push(cursor.expect_ident());
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        if !cursor.skip_type_to_comma() {
            break;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cursor = Cursor::new(stream);
    if cursor.peek().is_none() {
        return 0;
    }
    let mut count = 0;
    loop {
        cursor.skip_attributes();
        if cursor.peek().is_none() {
            break;
        }
        cursor.skip_visibility();
        count += 1;
        if !cursor.skip_type_to_comma() {
            break;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cursor.skip_attributes();
        if cursor.peek().is_none() {
            break;
        }
        let name = cursor.expect_ident();
        let shape = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cursor.next();
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                cursor.next();
                VariantShape::Tuple(arity)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Consume the trailing comma (and any discriminant — unsupported,
        // but skip_type_to_comma tolerates arbitrary tokens).
        match cursor.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                cursor.next();
            }
            Some(_) => {
                cursor.skip_type_to_comma();
            }
            None => break,
        }
    }
    variants
}

fn impl_header(item: &Item, direction: Direction) -> String {
    let trait_path = match direction {
        Direction::Serialize => "::serde::Serialize",
        Direction::Deserialize => "::serde::Deserialize",
    };
    if item.generics.is_empty() {
        format!("impl {} for {}", trait_path, item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {trait_path}"))
            .collect();
        format!(
            "impl<{}> {} for {}<{}>",
            bounded.join(", "),
            trait_path,
            item.name,
            item.generics.join(", ")
        )
    }
}

fn generate(item: &Item, direction: Direction) -> String {
    let body = match direction {
        Direction::Serialize => serialize_body(item),
        Direction::Deserialize => deserialize_body(item),
    };
    let signature = match direction {
        Direction::Serialize => "fn to_value(&self) -> ::serde::Value",
        Direction::Deserialize => {
            "fn from_value(__value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::de::Error>"
        }
    };
    format!(
        "#[automatically_derived]\n{header} {{\n    {signature} {{\n{body}\n    }}\n}}\n",
        header = impl_header(item, direction),
    )
}

fn serialize_body(item: &Item) -> String {
    match &item.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(arity) => {
            let elements: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elements.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let name = &item.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| {
                    let v = &variant.name;
                    match &variant.shape {
                        VariantShape::Unit => format!(
                            "{name}::{v} => \
                             ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{v}(__f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let elements: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{v}({binders}) => \
                                 ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Seq(::std::vec![{elements}]))]),",
                                binders = binders.join(", "),
                                elements = elements.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{v} {{ {fields} }} => \
                                 ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),",
                                fields = fields.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    }
}

fn deserialize_body(item: &Item) -> String {
    let name = &item.name;
    match &item.shape {
        Shape::UnitStruct => format!(
            "match __value {{\n\
             ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
             __other => ::std::result::Result::Err(::serde::de::Error::custom(\
             ::std::format!(\"expected null for unit struct {name}, got {{}}\", \
             __other.kind()))),\n}}"
        ),
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::TupleStruct(arity) => {
            let elements: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::de::element(__items, {i})?"))
                .collect();
            format!(
                "let __items = __value.as_seq().ok_or_else(|| \
                 ::serde::de::Error::custom(::std::format!(\
                 \"expected sequence for tuple struct {name}, got {{}}\", __value.kind())))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                elements.join(", ")
            )
        }
        Shape::NamedStruct(fields) => {
            let assignments: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(__map, \"{f}\")?,"))
                .collect();
            format!(
                "let __map = __value.as_map().ok_or_else(|| \
                 ::serde::de::Error::custom(::std::format!(\
                 \"expected map for struct {name}, got {{}}\", __value.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{\n{}\n}})",
                assignments.join("\n")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                        v = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|variant| {
                    let v = &variant.name;
                    match &variant.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantShape::Tuple(arity) => {
                            let elements: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::de::element(__items, {i})?"))
                                .collect();
                            Some(format!(
                                "\"{v}\" => {{\n\
                                 let __items = __payload.as_seq().ok_or_else(|| \
                                 ::serde::de::Error::custom(\
                                 \"expected sequence payload for variant {v}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{v}({}))\n}}",
                                elements.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let assignments: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::de::field(__map, \"{f}\")?,"))
                                .collect();
                            Some(format!(
                                "\"{v}\" => {{\n\
                                 let __map = __payload.as_map().ok_or_else(|| \
                                 ::serde::de::Error::custom(\
                                 \"expected map payload for variant {v}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{v} {{\n{}\n}})\n}}",
                                assignments.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}` of enum {name}\", __other))),\n\
                 }},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\n\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}` of enum {name}\", __other))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"expected enum {name}, got {{}}\", __other.kind()))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n"),
            )
        }
    }
}
