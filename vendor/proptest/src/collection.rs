//! Collection strategies (`prop::collection::{vec, btree_set, hash_set}`).

use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;

use rand::Rng;

use crate::strategy::{Strategy, TestRng};

/// A size specification: a fixed length or a half-open range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max: len + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *range.start(),
            max: *range.end() + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..self.max)
    }
}

/// Strategy for `Vec<T>` with lengths drawn from a size range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>` with cardinalities drawn from a size range.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates ordered sets with cardinality drawn from `size`.
///
/// Mirrors proptest's behaviour of retrying duplicate insertions a bounded
/// number of times, so requested minimum cardinalities are respected unless
/// the element domain is too small.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Strategy for `HashSet<T>` with cardinalities drawn from a size range.
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates hash sets with cardinality drawn from `size`.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = HashSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
