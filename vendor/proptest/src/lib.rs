//! Offline property-testing shim compatible with the `proptest!` surface the
//! hybridcast workspace uses.
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a ChaCha8 stream seeded from the test name, so
//!   every run explores the same inputs (fully deterministic, no failure
//!   persistence files needed),
//! * failing inputs are reported but **not shrunk**,
//! * the case count defaults to 64 and is tunable with the `PROPTEST_CASES`
//!   environment variable — CI and slow machines can dial it down, soak runs
//!   can dial it up.
//!
//! ```
//! use proptest::prelude::*;
//!
//! // Inside a `#[cfg(test)]` module the function would carry `#[test]`.
//! proptest! {
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface: strategies, macros and error types.

    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Namespaced re-exports matching `proptest::prelude::prop`.
        pub use crate::collection;
    }
}

/// Declares deterministic property tests.
///
/// Each function becomes a `#[test]` that samples its arguments from the
/// given strategies and runs the body for a configurable number of cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(stringify!($name), |__case_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __case_rng);)+
                let __case_description = ::std::format!(
                    ::std::concat!($(::std::stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                (__case_description, __outcome)
            });
        }
    )*};
}

/// Asserts a condition inside a property test, failing the case (not the
/// process) so the runner can report the generating inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+))
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), __l, __r
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discards the current case when its inputs do not satisfy a precondition;
/// the runner draws a replacement case instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
