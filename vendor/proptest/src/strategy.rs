//! Value-generation strategies for the proptest shim.

use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;

/// The generator handed to strategies: a deterministic ChaCha8 stream.
pub type TestRng = ChaCha8Rng;

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategies are usable behind shared references (the `proptest!` macro
/// takes them by reference).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy producing any value of `T` (the `any::<T>()` entry point).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// A strategy always producing clones of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
