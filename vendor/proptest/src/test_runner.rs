//! The case-driving runner behind the `proptest!` macro.

use rand::SeedableRng;

use crate::strategy::TestRng;

/// Default number of accepted cases per property.
pub const DEFAULT_CASES: usize = 64;

/// How a single generated case can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property does not hold for these inputs.
    Fail(String),
    /// The inputs violate a precondition (`prop_assume!`); draw a new case.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Creates a rejection with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(message) => write!(f, "{message}"),
            TestCaseError::Reject(message) => write!(f, "rejected: {message}"),
        }
    }
}

/// Returns the configured case count (the `PROPTEST_CASES` environment
/// variable, defaulting to [`DEFAULT_CASES`]).
pub fn configured_cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|text| text.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CASES)
}

/// Runs one property: draws cases deterministically (seeded from the test
/// name) until the configured number has been accepted or one fails.
///
/// # Panics
///
/// Panics — failing the surrounding `#[test]` — when a case fails or when
/// too many cases in a row are rejected by `prop_assume!`.
pub fn run<F>(name: &str, case: F)
where
    F: Fn(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let cases = configured_cases();
    let mut rng = TestRng::seed_from_u64(seed_from_name(name));
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    while accepted < cases {
        let (description, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > cases * 32 + 256 {
                    panic!(
                        "property `{name}`: too many rejected cases \
                         ({rejected} rejections for {accepted} accepted)"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "property `{name}` failed after {accepted} passing case(s)\n\
                     inputs: {description}\n{message}"
                );
            }
        }
    }
}

/// Stable 64-bit FNV-1a hash of the test name, used as the stream seed.
fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_draws_replacement_cases() {
        let mut calls = 0usize;
        let calls_ref = std::cell::Cell::new(0usize);
        run("rejection_test", |rng| {
            calls_ref.set(calls_ref.get() + 1);
            use rand::RngCore;
            let v = rng.next_u64() % 4;
            if v == 0 {
                ("v = 0".to_string(), Err(TestCaseError::reject("v != 0")))
            } else {
                (format!("v = {v}"), Ok(()))
            }
        });
        calls += calls_ref.get();
        assert!(calls >= configured_cases());
    }

    #[test]
    #[should_panic(expected = "property `failing_test` failed")]
    fn failure_panics_with_inputs() {
        run("failing_test", |_| {
            (
                "x = 1".to_string(),
                Err(TestCaseError::fail("x must be even")),
            )
        });
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_from_name("a"), seed_from_name("b"));
    }
}
