//! Offline JSON front-end for the vendored serde shim.
//!
//! Provides the handful of entry points the hybridcast workspace calls
//! (`to_string`, `to_string_pretty`, `to_vec`, `from_str`, `from_slice`,
//! [`Error`]) over the shim's `serde::Value` data model. The emitted JSON is
//! conventional — objects, arrays, numbers, strings with standard escapes —
//! and every value the workspace serializes round-trips through the parser.
//!
//! ```
//! let numbers = vec![1u64, 2, 3];
//! let json = serde_json::to_string(&numbers).unwrap();
//! assert_eq!(json, "[1,2,3]");
//! let back: Vec<u64> = serde_json::from_str(&json).unwrap();
//! assert_eq!(back, numbers);
//! ```

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// An error from JSON serialization or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::from)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                let text = f.to_string();
                out.push_str(&text);
                // Keep the float/integer distinction visible in the output
                // so round-trips preserve the value kind.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                return Err(Error("cannot serialize non-finite float".to_string()));
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            if !items.is_empty() {
                write_break(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            if !entries.is_empty() {
                write_break(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_break(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                char::from(byte),
                self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            None => Err(Error("unexpected end of input".to_string())),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid literal at offset {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid literal at offset {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid literal at offset {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error(format!(
                "unexpected byte `{}` at offset {}",
                c as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let end = start + 4;
                            let hex = self
                                .bytes
                                .get(start..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".to_string()))?;
                            // Surrogate pairs are not emitted by the writer;
                            // reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("unsupported \\u escape".to_string()))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Decode the next UTF-8 scalar from the raw bytes.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(super::to_string(&42u64).unwrap(), "42");
        assert_eq!(super::to_string(&-7i64).unwrap(), "-7");
        assert_eq!(super::to_string(&true).unwrap(), "true");
        assert_eq!(super::to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(super::to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(super::from_str::<u64>("42").unwrap(), 42);
        assert_eq!(super::from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(
            super::from_str::<String>("\"hi\\nthere\"").unwrap(),
            "hi\nthere"
        );
    }

    #[test]
    fn collections_round_trip() {
        let mut map: BTreeMap<u64, Vec<String>> = BTreeMap::new();
        map.insert(3, vec!["a".to_string(), "b\"quoted\"".to_string()]);
        map.insert(1, vec![]);
        let json = super::to_string(&map).unwrap();
        let back: BTreeMap<u64, Vec<String>> = super::from_str(&json).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn options_round_trip() {
        let values: Vec<Option<f64>> = vec![Some(0.25), None, Some(3.0)];
        let json = super::to_string(&values).unwrap();
        assert_eq!(json, "[0.25,null,3.0]");
        let back: Vec<Option<f64>> = super::from_str(&json).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let data = vec![(1u64, 2u64), (3, 4)];
        let json = super::to_string_pretty(&data).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<(u64, u64)> = super::from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(super::from_str::<u64>("???").is_err());
        assert!(super::from_str::<u64>("42 junk").is_err());
        assert!(super::from_slice::<u64>(b"\"unterminated").is_err());
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX - 3;
        let json = super::to_string(&big).unwrap();
        assert_eq!(super::from_str::<u64>(&json).unwrap(), big);
    }
}
