//! Offline shim for the subset of the `bytes` crate used by the
//! `hybridcast-net` wire codec: a growable byte buffer with a consuming
//! front cursor ([`BytesMut`]) plus the [`Buf`] / [`BufMut`] trait names.
//!
//! The implementation is a plain `Vec<u8>` with a start offset; `advance`
//! and `split_to` move the offset instead of shifting bytes, and writes
//! compact the buffer lazily. That is all the length-prefixed frame
//! reassembly in `hybridcast_net::wire` needs.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// A growable byte buffer supporting cheap consumption from the front.
#[derive(Clone, Default, Eq)]
pub struct BytesMut {
    storage: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            storage: Vec::with_capacity(capacity),
            start: 0,
        }
    }

    /// Ensures space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.compact();
        self.storage.reserve(additional);
    }

    /// Appends `slice` to the buffer.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.storage.extend_from_slice(slice);
    }

    /// Splits off and returns the first `at` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at` exceeds the buffer length.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(
            at <= self.len(),
            "split_to({at}) out of bounds of {}",
            self.len()
        );
        let front = self.storage[self.start..self.start + at].to_vec();
        self.start += at;
        BytesMut {
            storage: front,
            start: 0,
        }
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.storage.len() - self.start
    }

    /// Whether no readable bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all contents.
    pub fn clear(&mut self) {
        self.storage.clear();
        self.start = 0;
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.storage.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.storage[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.storage[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<&[u8]> for BytesMut {
    fn from(slice: &[u8]) -> Self {
        BytesMut {
            storage: slice.to_vec(),
            start: 0,
        }
    }
}

impl<const N: usize> From<&[u8; N]> for BytesMut {
    fn from(array: &[u8; N]) -> Self {
        BytesMut::from(array.as_slice())
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", &**self)
    }
}

/// Read-side cursor operations.
pub trait Buf {
    /// Number of readable bytes remaining.
    fn remaining(&self) -> usize;

    /// Discards the next `count` readable bytes.
    fn advance(&mut self, count: usize);

    /// Whether any readable bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, count: usize) {
        assert!(
            count <= self.len(),
            "advance({count}) out of bounds of {}",
            self.len()
        );
        self.start += count;
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a single byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.storage.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_consume() {
        let mut buf = BytesMut::new();
        buf.put_u32(7);
        buf.put_slice(b"abc");
        assert_eq!(buf.len(), 7);
        assert_eq!(&buf[..4], &[0, 0, 0, 7]);
        buf.advance(4);
        assert_eq!(&*buf, b"abc");
        let front = buf.split_to(2);
        assert_eq!(&*front, b"ab");
        assert_eq!(&*buf, b"c");
        assert!(!buf.is_empty());
        buf.advance(1);
        assert!(buf.is_empty());
    }

    #[test]
    fn reserve_compacts_consumed_prefix() {
        let mut buf = BytesMut::from(b"0123456789".as_slice());
        buf.advance(8);
        buf.reserve(100);
        assert_eq!(&*buf, b"89");
        buf.extend_from_slice(b"xy");
        assert_eq!(&*buf, b"89xy");
    }

    #[test]
    fn chunks_iterate_readable_bytes_only() {
        let mut buf = BytesMut::from(b"abcdef".as_slice());
        buf.advance(2);
        let chunks: Vec<&[u8]> = buf.chunks(3).collect();
        assert_eq!(chunks, vec![b"cde".as_slice(), b"f".as_slice()]);
    }
}
