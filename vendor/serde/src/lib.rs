//! Offline vendored serialization framework for the hybridcast workspace.
//!
//! This is *not* the real `serde` crate: with no network access the
//! workspace vendors a minimal replacement that keeps the same names
//! (`Serialize`, `Deserialize`, `#[derive(Serialize, Deserialize)]`) for the
//! subset the codebase uses. Instead of serde's zero-copy visitor
//! architecture, values convert to and from a simple owned [`Value`] tree
//! which `serde_json` renders as JSON. The derive macros live in the
//! companion `serde_derive` crate and target the same data shapes real serde
//! supports here: structs with named fields, newtype/tuple structs, and
//! externally tagged enums.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (also used for all non-negative integers).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the entries of a map value.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the elements of a sequence value.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// A short human-readable description of the value's kind, for errors.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the shim's data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the shim's data model.
    fn from_value(value: &Value) -> Result<Self, de::Error>;
}

pub mod ser {
    //! Serialization half of the shim (re-exports for path compatibility).
    pub use super::Serialize;
}

pub mod de {
    //! Deserialization half of the shim: the [`Error`] type and helpers the
    //! derive macro expands to.

    use super::{Deserialize, Value};
    use std::fmt;

    /// An error produced while rebuilding a value from the data model.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(String);

    impl Error {
        /// Creates an error with the given message.
        pub fn custom(message: impl Into<String>) -> Self {
            Error(message.into())
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "deserialization error: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Looks up `name` in a struct map and deserializes it. Absent fields
    /// deserialize from `null`, which succeeds only for types with a null
    /// form (e.g. `Option`).
    pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
        match entries.iter().find(|(key, _)| key == name) {
            Some((_, value)) => {
                T::from_value(value).map_err(|e| Error(format!("field `{name}`: {e}")))
            }
            None => {
                T::from_value(&Value::Null).map_err(|_| Error(format!("missing field `{name}`")))
            }
        }
    }

    /// Fetches element `index` of a tuple sequence and deserializes it.
    pub fn element<T: Deserialize>(items: &[Value], index: usize) -> Result<T, Error> {
        let value = items
            .get(index)
            .ok_or_else(|| Error(format!("missing tuple element {index}")))?;
        T::from_value(value).map_err(|e| Error(format!("element {index}: {e}")))
    }
}

/// Renders a scalar [`Value`] as a map key string.
///
/// # Panics
///
/// Panics on sequence or map keys, mirroring real `serde_json`'s refusal to
/// serialize maps whose keys are not scalars.
pub fn key_to_string(value: &Value) -> String {
    match value {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Null | Value::Seq(_) | Value::Map(_) => {
            panic!("map keys must be scalar, got {}", value.kind())
        }
    }
}

/// Rebuilds a map key of type `K` from its string form: tries the string
/// itself first, then a numeric reinterpretation (for integer-like keys such
/// as node ids).
pub fn key_from_str<K: Deserialize>(key: &str) -> Result<K, de::Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    if let Ok(b) = key.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(de::Error::custom(format!("unusable map key `{key}`")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                let n = match *value {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    ref other => {
                        return Err(de::Error::custom(format!(
                            "expected unsigned integer, got {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| de::Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        let n = u64::from_value(value)?;
        usize::try_from(n).map_err(|_| de::Error::custom("integer out of range"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                let n = match *value {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| de::Error::custom("integer out of range"))?,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => {
                        return Err(de::Error::custom(format!(
                            "expected integer, got {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| de::Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        let n = i64::from_value(value)?;
        isize::try_from(n).map_err(|_| de::Error::custom("integer out of range"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match *value {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(de::Error::custom(format!(
                "expected float, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(de::Error::custom(format!(
                "expected null, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| de::Error::custom(format!("expected sequence, got {}", value.kind())))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                let items = value.as_seq().ok_or_else(|| {
                    de::Error::custom(format!("expected tuple sequence, got {}", value.kind()))
                })?;
                Ok(($(de::element::<$name>(items, $idx)?,)+))
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        Vec::<T>::from_value(value).map(|items| items.into_iter().collect())
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort the rendered elements so output is deterministic.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(compare_values);
        Value::Seq(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        Vec::<T>::from_value(value).map(|items| items.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        map_entries(value)?
            .iter()
            .map(|(k, v)| Ok((key_from_str::<K>(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Map(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        map_entries(value)?
            .iter()
            .map(|(k, v)| Ok((key_from_str::<K>(k)?, V::from_value(v)?)))
            .collect()
    }
}

fn map_entries(value: &Value) -> Result<&[(String, Value)], de::Error> {
    value
        .as_map()
        .ok_or_else(|| de::Error::custom(format!("expected map, got {}", value.kind())))
}

fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::U64(x), Value::U64(y)) => x.cmp(y),
        (Value::I64(x), Value::I64(y)) => x.cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::F64(x), Value::F64(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        _ => Ordering::Equal,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind())
    }
}
