//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate, vendored so the workspace builds without network access.
//!
//! Only the surface the hybridcast workspace actually uses is provided:
//!
//! * [`RngCore`] — the raw generator interface (`next_u32`, `next_u64`,
//!   `fill_bytes`),
//! * [`Rng`] — convenience methods (`gen`, `gen_range`, `gen_bool`),
//!   blanket-implemented for every `RngCore`,
//! * [`SeedableRng`] — seeding, including the SplitMix64-based
//!   `seed_from_u64` used by every deterministic experiment,
//! * [`seq::SliceRandom`] — `shuffle` (Fisher–Yates) and `choose`.
//!
//! The integer `gen_range` implementation uses a widening-multiply map from
//! `next_u64` onto the requested span. The tiny modulo bias (≤ 2⁻⁶⁴ per
//! draw) is irrelevant for the simulations here; what matters is that every
//! draw is a pure function of the generator state, so seeded runs stay
//! reproducible.

#![forbid(unsafe_code)]

/// The core interface of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits mapped onto [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()).wrapping_mul(span)) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let offset = (u128::from(rng.next_u64()).wrapping_mul(span)) >> 64;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Convenience methods layered on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns a value uniformly distributed in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// exactly like `rand_core` does, so seeded experiments transfer.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea & Flood).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dest, byte) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dest = byte;
            }
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Extension methods on slices that consume randomness.
    pub trait SliceRandom {
        /// The element type of the sequence.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = sample_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(sample_index(rng, self.len()))
            }
        }
    }

    fn sample_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
        ((u128::from(rng.next_u64()).wrapping_mul(bound as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak multiplicative scramble is enough for unit tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(9);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Counter(11);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn dyn_rng_core_supports_rng_methods() {
        let mut rng = Counter(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v: usize = dyn_rng.gen_range(0..10);
        assert!(v < 10);
        let mut items = [1u8, 2, 3];
        items.shuffle(dyn_rng);
    }
}
