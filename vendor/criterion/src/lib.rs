//! Offline shim for the subset of `criterion` the workspace's benches use.
//!
//! Provides the same structure — `criterion_group!` / `criterion_main!`,
//! benchmark groups, `Bencher::iter` / `iter_batched` — with a much simpler
//! measurement loop: a short calibration pass sizes the batch, then a fixed
//! number of timed batches are averaged and printed as `ns/iter`. There are
//! no statistical comparisons, plots or saved baselines; the value here is
//! that `cargo bench` runs offline and prints stable relative numbers.
//!
//! Tuning knobs (environment variables):
//!
//! * `CRITERION_SAMPLES` — timed batches per benchmark (default 10),
//! * `CRITERION_TARGET_MS` — target time per batch in ms (default 100).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration setup output is sized relative to the batch
/// (API-compatibility only; the shim treats all variants the same).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Labels accepted by `bench_function`-style entry points.
pub trait IntoLabel {
    /// Renders the label.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    target: Duration,
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, averaging over calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in the target batch time?
        let calibration_start = Instant::now();
        let mut calibration_iters = 0u64;
        while calibration_start.elapsed() < self.target / 10 || calibration_iters < 1 {
            black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = calibration_start.elapsed().as_secs_f64() / calibration_iters as f64;
        let batch = ((self.target.as_secs_f64() / per_iter) as u64).clamp(1, 1_000_000);

        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += batch;
        }
        self.mean_ns = total_ns / total_iters as f64;
    }

    /// Times `routine` with a fresh `setup()` value per iteration; only the
    /// routine is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        // One calibration iteration to estimate cost, then size the run so
        // measured time lands near the target.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let first = start.elapsed();
        measured += first;
        iters += 1;
        let per_iter = first.as_secs_f64().max(1e-9);
        let remaining =
            ((self.target.as_secs_f64() * self.samples as f64 / per_iter) as u64).clamp(1, 100_000);
        for _ in 0..remaining {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.mean_ns = measured.as_nanos() as f64 / iters as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.criterion.run_one(&label, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group (report-flush point in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    samples: usize,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(10);
        let target_ms = std::env::var("CRITERION_TARGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(100u64);
        Criterion {
            samples,
            target: Duration::from_millis(target_ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        self.run_one(&label, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: self.samples,
            target: self.target,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        let mean = bencher.mean_ns;
        let (value, unit) = if mean >= 1e9 {
            (mean / 1e9, "s")
        } else if mean >= 1e6 {
            (mean / 1e6, "ms")
        } else if mean >= 1e3 {
            (mean / 1e3, "µs")
        } else {
            (mean, "ns")
        };
        println!("{label:<60} {value:>10.3} {unit}/iter");
    }
}

/// Declares a group-runner function over a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` over one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_SAMPLES", "2");
        std::env::set_var("CRITERION_TARGET_MS", "1");
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        std::env::set_var("CRITERION_SAMPLES", "1");
        std::env::set_var("CRITERION_TARGET_MS", "1");
        let mut criterion = Criterion::default();
        criterion.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::LargeInput);
        });
    }
}
