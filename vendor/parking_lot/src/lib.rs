//! Offline shim for the subset of `parking_lot` the workspace uses.
//!
//! Wraps `std::sync` locks behind parking_lot's poison-free API: `lock()`,
//! `read()` and `write()` return guards directly instead of `Result`s. A
//! poisoned std lock (a thread panicked while holding it) is recovered into
//! the inner data, matching parking_lot's semantics of not propagating
//! poisoning.

#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the data (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the data stays accessible.
        assert_eq!(*m.lock(), 1);
    }
}
