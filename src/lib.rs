//! Facade crate re-exporting the full hybridcast workspace.
//!
//! See the individual crates for details:
//! * [`hybridcast_graph`] — graph substrate,
//! * [`hybridcast_membership`] — Cyclon and Vicinity membership protocols,
//! * [`hybridcast_sim`] — cycle-driven simulator,
//! * [`hybridcast_core`] — dissemination protocols (RandCast, RingCast, ...),
//! * [`hybridcast_net`] — real-transport runtime.

pub use hybridcast_core as core;
pub use hybridcast_graph as graph;
pub use hybridcast_membership as membership;
pub use hybridcast_net as net;
pub use hybridcast_sim as sim;
