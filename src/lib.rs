//! Facade crate re-exporting the full hybridcast workspace.
//!
//! See the individual crates for details:
//! * [`hybridcast_graph`] — graph substrate,
//! * [`hybridcast_membership`] — Cyclon and Vicinity membership protocols,
//! * [`hybridcast_sim`] — cycle-driven simulator,
//! * [`hybridcast_core`] — dissemination protocols (RandCast, RingCast, ...),
//! * [`hybridcast_net`] — real-transport runtime,
//! * [`hybridcast_obs`] — zero-cost probe layer (trace events, metrics,
//!   stage profiling).
//!
//! # Example: warm an overlay, then disseminate with RingCast
//!
//! ```
//! use hybridcast::core::engine::disseminate;
//! use hybridcast::core::overlay::{Overlay, SnapshotOverlay};
//! use hybridcast::core::protocols::RingCast;
//! use hybridcast::sim::{Network, SimConfig};
//! use rand::SeedableRng;
//!
//! let mut net = Network::new(SimConfig { nodes: 100, ..SimConfig::default() }, 7);
//! net.run_cycles(60);
//! let overlay = SnapshotOverlay::new(net.overlay_snapshot());
//! let origin = overlay.live_node_ids()[0];
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let report = disseminate(&overlay, &RingCast::new(3), origin, &mut rng);
//! assert!(report.is_complete(), "RingCast is deterministic without failures");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hybridcast_core as core;
pub use hybridcast_graph as graph;
pub use hybridcast_membership as membership;
pub use hybridcast_net as net;
pub use hybridcast_obs as obs;
pub use hybridcast_sim as sim;
